(* Timing simulator tests: protocol behavior, contention, occupancy,
   determinism (paper §6's runtime model). *)

open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms

let topo1 = T.Presets.ndv4 ~nodes:1

let time ?max_tiles ?(topo = topo1) ir bytes =
  (Simulator.run_buffer ~topo ~buffer_bytes:bytes ?max_tiles
     ~check_occupancy:false ir)
    .Simulator.time

let ring proto = A.Ring_allreduce.ir ~proto ~num_ranks:8 ()

let test_monotone_in_size () =
  let ir = ring T.Protocol.Simple in
  let rec go prev = function
    | [] -> ()
    | s :: rest ->
        let t = time ir s in
        Alcotest.(check bool) "monotone" true (t >= prev);
        go t rest
  in
  go 0. [ 1024.; 65536.; 1048576.; 16777216. ]

let test_protocol_tradeoff () =
  (* LL wins tiny buffers (lower alpha), Simple wins huge ones (full
     bandwidth) — the §6.1 protocol tradeoff. *)
  let ll = ring T.Protocol.LL and simple = ring T.Protocol.Simple in
  Alcotest.(check bool) "LL faster at 8KB" true (time ll 8192. < time simple 8192.);
  Alcotest.(check bool) "Simple faster at 256MB" true
    (time simple 268435456. < time ll 268435456.)

let test_parallelization_helps_large () =
  (* One thread block cannot saturate NVLink (§5.1): more instances win at
     large sizes, lose at small ones. *)
  let r1 = ring T.Protocol.Simple in
  let r8 = Instances.blocked r1 ~instances:8 in
  Alcotest.(check bool) "r8 faster at 256MB" true
    (time r8 268435456. < time r1 268435456.);
  Alcotest.(check bool) "r1 faster at 4KB" true (time r1 4096. < time r8 4096.)

let test_launch_overhead_visible () =
  let ir = ring T.Protocol.LL in
  let r = Simulator.run_buffer ~topo:topo1 ~buffer_bytes:1024. ir in
  Alcotest.(check bool) "kernel_time < time" true
    (r.Simulator.kernel_time < r.Simulator.time);
  Alcotest.(check bool) "time includes launch" true
    (r.Simulator.time >= T.Topology.launch_overhead topo1)

let test_occupancy_check () =
  let big = Instances.blocked (ring T.Protocol.Simple) ~instances:200 in
  match Simulator.run_buffer ~topo:topo1 ~buffer_bytes:1048576. big with
  | exception Simulator.Sim_error _ -> ()
  | _ -> Alcotest.fail "200 TBs per GPU accepted on 108 SMs"

let test_rank_mismatch () =
  let ir = A.Ring_allreduce.ir ~num_ranks:4 () in
  match Simulator.run_buffer ~topo:topo1 ~buffer_bytes:1024. ir with
  | exception Simulator.Sim_error _ -> ()
  | _ -> Alcotest.fail "4-rank IR on 8-GPU topology accepted"

let test_deterministic () =
  let ir = A.Hierarchical_allreduce.ir ~nodes:2 ~gpus_per_node:8 () in
  let topo = T.Presets.ndv4 ~nodes:2 in
  let t1 = time ~topo ir 4194304. and t2 = time ~topo ir 4194304. in
  Alcotest.(check (float 0.)) "bit-identical" t1 t2

let test_tiles_cap () =
  let ir = ring T.Protocol.Simple in
  let r =
    Simulator.run_buffer ~topo:topo1 ~buffer_bytes:1073741824. ~max_tiles:2 ir
  in
  Alcotest.(check int) "respects max_tiles" 2 r.Simulator.tiles;
  let r1 =
    Simulator.run_buffer ~topo:topo1 ~buffer_bytes:1024. ~max_tiles:8 ir
  in
  Alcotest.(check int) "small buffers need one tile" 1 r1.Simulator.tiles

let test_wire_bytes_accounting () =
  (* A ring moves 2*(R-1)/R of the buffer per GPU; with LL the wire volume
     doubles. *)
  let bytes = 8388608. in
  let simple = Simulator.run_buffer ~topo:topo1 ~buffer_bytes:bytes (ring T.Protocol.Simple) in
  let ll = Simulator.run_buffer ~topo:topo1 ~buffer_bytes:bytes (ring T.Protocol.LL) in
  let expected = 8. *. bytes *. (2. *. 7. /. 8.) in
  Alcotest.(check bool) "simple wire volume" true
    (abs_float (simple.Simulator.wire_bytes -. expected) /. expected < 0.01);
  Alcotest.(check bool) "LL doubles wire bytes" true
    (abs_float ((ll.Simulator.wire_bytes /. simple.Simulator.wire_bytes) -. 2.)
    < 0.01)

let test_ib_serialization () =
  (* Two nodes: cross-node sends on one connection serialize on the NIC
     proxy, so doubling the message count roughly doubles the time at
     bandwidth-bound sizes. *)
  let topo = T.Presets.hierarchical ~nodes:2 ~gpus_per_node:1 () in
  let coll cf = Collective.make Collective.Alltonext ~num_ranks:2 ~chunk_factor:cf () in
  let one =
    Compile.ir ~verify:false (coll 1) (fun p ->
        let c = Program.chunk p ~rank:0 Buffer_id.Input ~index:0 () in
        ignore (Program.copy c ~rank:1 Buffer_id.Output ~index:0 ()))
  in
  let t1 = time ~topo ~max_tiles:1 one 33554432. in
  let t_half = time ~topo ~max_tiles:1 one 16777216. in
  Alcotest.(check bool) "bandwidth bound" true (t1 > 1.7 *. t_half)

let test_algbw () =
  let r = Simulator.run_buffer ~topo:topo1 ~buffer_bytes:1048576. (ring T.Protocol.Simple) in
  Alcotest.(check (float 1e-6)) "algbw definition"
    (1048576. /. r.Simulator.time)
    (Simulator.algbw ~buffer_bytes:1048576. r)

let () =
  Alcotest.run "simulator"
    [
      ( "model",
        [
          Testutil.tc "monotone in size" test_monotone_in_size;
          Testutil.tc "protocol tradeoff" test_protocol_tradeoff;
          Testutil.tc "parallelization" test_parallelization_helps_large;
          Testutil.tc "launch overhead" test_launch_overhead_visible;
          Testutil.tc "wire accounting" test_wire_bytes_accounting;
          Testutil.tc "IB proxy" test_ib_serialization;
        ] );
      ( "interface",
        [
          Testutil.tc "occupancy" test_occupancy_check;
          Testutil.tc "rank mismatch" test_rank_mismatch;
          Testutil.tc "deterministic" test_deterministic;
          Testutil.tc "tile cap" test_tiles_cap;
          Testutil.tc "algbw" test_algbw;
        ] );
    ]
