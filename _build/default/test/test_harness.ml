(* Harness tests: sweeps, report tables, the tuner's selection tables and
   the registry. *)

module T = Msccl_topology
module B = Msccl_baselines
module H = Msccl_harness

let test_sweep () =
  Alcotest.(check (list (float 0.)))
    "powers of two"
    [ 1024.; 2048.; 4096. ]
    (H.Sweep.sizes ~from:1024. ~upto:4096.);
  Alcotest.(check int) "coarse halves the points" 2
    (List.length (H.Sweep.sizes_coarse ~from:1024. ~upto:4096.));
  Alcotest.(check string) "1KB" "1KB" (H.Sweep.pretty 1024.);
  Alcotest.(check string) "4MB" "4MB" (H.Sweep.pretty (H.Sweep.mib 4.));
  Alcotest.(check string) "2GB" "2GB" (H.Sweep.pretty (H.Sweep.gib 2.));
  Alcotest.(check string) "512KB" "512KB" (H.Sweep.pretty (H.Sweep.kib 512.));
  Alcotest.(check string) "odd bytes" "1000B" (H.Sweep.pretty 1000.)

let test_report () =
  let fig =
    {
      H.Report.fig_id = "t";
      title = "test";
      ylabel = "y";
      sizes = [ 1024.; 2048. ];
      series =
        [
          H.Report.speedup_series ~label:"a" ~baseline:[ 2.; 2. ] [ 1.; 4. ];
        ];
    }
  in
  let s = List.hd fig.H.Report.series in
  Alcotest.(check (list (float 1e-9))) "speedups" [ 2.; 0.5 ] s.H.Report.values;
  let v, at = H.Report.peak s ~sizes:fig.H.Report.sizes in
  Alcotest.(check (float 1e-9)) "peak value" 2. v;
  Alcotest.(check (float 1e-9)) "peak size" 1024. at;
  let rendered = Format.asprintf "%a" H.Report.print fig in
  Alcotest.(check bool) "renders" true (String.length rendered > 0);
  Alcotest.(check bool) "summary mentions peak" true
    (String.length (H.Report.summarize fig) > 0)

let test_tuner_table () =
  let topo = T.Presets.ndv4 ~nodes:1 in
  let table =
    H.Tuner.tune ~topo
      ~nccl:(B.Nccl_model.allreduce topo)
      ~candidates:(H.Tuner.allreduce_candidates topo)
      ~sizes:[ 4096.; 65536.; 1048576.; 67108864. ]
      ()
  in
  (* Ranges are contiguous and cover the grid. *)
  let entries = table.H.Tuner.t_entries in
  Alcotest.(check bool) "nonempty" true (entries <> []);
  Alcotest.(check (float 0.)) "starts at grid start" 4096.
    (List.hd entries).H.Tuner.lo;
  List.iter
    (fun (e : H.Tuner.entry) ->
      Alcotest.(check bool) "lo <= hi" true (e.H.Tuner.lo <= e.H.Tuner.hi);
      Alcotest.(check bool) "speedup >= 1 (NCCL fallback floor)" true
        (e.H.Tuner.speedup >= 0.999))
    entries;
  (* Small sizes must not fall back to NCCL (All Pairs wins there),
     and selection is consistent with the table. *)
  let small_choice = H.Tuner.select table ~buffer_bytes:4096. in
  Alcotest.(check bool) "small size won by an MSCCLang algorithm" true
    (small_choice <> "NCCL");
  Alcotest.(check string) "select matches entry" small_choice
    (List.hd entries).H.Tuner.choice

let test_registry_consistency () =
  let names = H.Registry.names () in
  Alcotest.(check int) "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (spec.H.Registry.name ^ " has doc")
        true
        (String.length spec.H.Registry.doc > 0))
    H.Registry.all;
  Alcotest.(check bool) "find works" true
    (H.Registry.find "ring-allreduce" <> None);
  Alcotest.(check bool) "find unknown" true (H.Registry.find "nope" = None)

let test_e2e_structure () =
  (* Only the cheap workload (the full run takes minutes). *)
  let rows = [ List.hd (H.E2e.run_inference_only ()) ] in
  List.iter
    (fun (r : H.E2e.row) ->
      Alcotest.(check bool) "positive times" true
        (r.H.E2e.nccl_time > 0. && r.H.E2e.msccl_time > 0.);
      Alcotest.(check (float 1e-9)) "speedup consistent"
        (r.H.E2e.nccl_time /. r.H.E2e.msccl_time)
        r.H.E2e.speedup;
      Alcotest.(check bool) "MSCCLang never loses (NCCL fallback)" true
        (r.H.E2e.speedup >= 0.999))
    rows

let () =
  Alcotest.run "harness"
    [
      ( "plumbing",
        [
          Testutil.tc "sweep" test_sweep;
          Testutil.tc "report" test_report;
          Testutil.tc "registry" test_registry_consistency;
        ] );
      ( "tuner",
        [
          Testutil.tc "selection table" test_tuner_table;
          Testutil.tc "e2e structure" test_e2e_structure;
        ] );
    ]
