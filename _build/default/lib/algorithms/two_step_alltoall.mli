(** Two-Step AllToAll (paper §7.3, Fig. 9).

    A naive AllToAll on many nodes sends one small chunk per remote GPU
    over InfiniBand, paying the high per-message IB overhead N*G times per
    GPU. The Two-Step algorithm first gathers, inside each node, all the
    chunks destined to GPU (n, g) onto the local "gateway" GPU (m, g) —
    the one with the same intra-node index — and then ships them as a
    single aggregated IB transfer of [gpus_per_node] chunks, reducing the
    per-GPU IB message count from [nodes * gpus_per_node] to [nodes - 1].

    The paper uses MSCCLang's default scheduling with one instance and
    tunes only the protocol; the MSCCLang version beats the hand-optimized
    CUDA implementation by up to 1.3x because the compiler parallelizes
    across thread blocks and the scratch aggregation happens inside the
    single kernel (no separate pack kernel and synchronization). *)

val program :
  ?aggregate:bool -> nodes:int -> gpus_per_node:int ->
  Msccl_core.Program.t -> unit
(** [aggregate] (default true) ships each gateway's [gpus_per_node] staged
    chunks as one IB transfer; with [false] they go as single-chunk sends —
    the ablation isolating §5.1's aggregation optimization. *)

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?aggregate:bool ->
  ?verify:bool ->
  nodes:int ->
  gpus_per_node:int ->
  unit ->
  Msccl_core.Ir.t
