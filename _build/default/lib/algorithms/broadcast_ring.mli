(** Pipelined Ring Broadcast: the root's chunks travel around the ring one
    hop at a time; with multiple chunks the hops pipeline, and the compiler
    fuses each forwarding hop into a receive-copy-send. *)

val program :
  num_ranks:int -> root:int -> chunk_factor:int -> channels:int ->
  Msccl_core.Program.t -> unit

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?channels:int ->
  ?chunk_factor:int ->
  ?instances:int ->
  ?verify:bool ->
  num_ranks:int ->
  root:int ->
  unit ->
  Msccl_core.Ir.t
