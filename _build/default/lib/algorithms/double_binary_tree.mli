(** Double binary tree AllReduce — NCCL's actual Tree algorithm.

    A single reduction tree leaves its leaves' send links and its root's
    receive links idle; NCCL therefore runs two complementary trees, each
    carrying half of the data, arranged so most ranks are a leaf in one
    tree and an interior node in the other. Here the second tree is the
    first one with every rank shifted by one (mod R), and each tree owns
    one half of the chunks on its own channel. *)

val program : num_ranks:int -> chunks_per_tree:int -> Msccl_core.Program.t -> unit

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?chunks_per_tree:int ->
  ?verify:bool ->
  num_ranks:int ->
  unit ->
  Msccl_core.Ir.t
(** In-place AllReduce with [2 * chunks_per_tree] chunks (default 1 per
    tree). *)
