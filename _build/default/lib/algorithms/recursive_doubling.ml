open Msccl_core

let is_pow2 n = n > 0 && n land (n - 1) = 0

let program ~num_ranks prog =
  if not (is_pow2 num_ranks && num_ranks >= 2) then
    invalid_arg "Recursive_doubling: num_ranks must be a power of two >= 2";
  (* Own chunk into its final slot. *)
  for r = 0 to num_ranks - 1 do
    let c = Program.chunk prog ~rank:r Buffer_id.Input ~index:0 () in
    ignore (Program.copy c ~rank:r Buffer_id.Output ~index:r ())
  done;
  let d = ref 1 in
  while !d < num_ranks do
    for r = 0 to num_ranks - 1 do
      let partner = r lxor !d in
      (* Aligned block currently held by [r]: [base, base + d). *)
      let base = r / !d * !d in
      let c =
        Program.chunk prog ~rank:r Buffer_id.Output ~index:base ~count:!d ()
      in
      ignore (Program.copy c ~rank:partner Buffer_id.Output ~index:base ())
    done;
    d := !d * 2
  done

let ir ?proto ?instances ?verify ~num_ranks () =
  let coll = Collective.make Collective.Allgather ~num_ranks () in
  Compile.ir ~name:"recursive-doubling-allgather" ?proto ?instances ?verify
    coll (program ~num_ranks)
