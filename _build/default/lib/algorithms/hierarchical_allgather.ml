open Msccl_core

let program ~nodes ~gpus_per_node prog =
  let g_cnt = gpus_per_node in
  (* Own chunk to its final slot, then an intra-node ring assembles each
     node's block on every local GPU. *)
  for r = 0 to (nodes * g_cnt) - 1 do
    let c = Program.chunk prog ~rank:r Buffer_id.Input ~index:0 () in
    ignore (Program.copy c ~rank:r Buffer_id.Output ~index:r ())
  done;
  for n = 0 to nodes - 1 do
    let local_ranks = List.init g_cnt (fun i -> (n * g_cnt) + i) in
    Patterns.ring_all_gather prog ~ranks:local_ranks ~buf:Buffer_id.Output
      ~offset:(n * g_cnt) ~count:1
      ~ch:(fun ~hop:_ -> Some 0)
      ()
  done;
  (* Inter-node ring among same-index GPUs, shipping whole node blocks. *)
  for g = 0 to g_cnt - 1 do
    let cross_ranks = List.init nodes (fun i -> (i * g_cnt) + g) in
    Patterns.ring_all_gather prog ~ranks:cross_ranks ~buf:Buffer_id.Output
      ~offset:0 ~count:g_cnt ~stride:g_cnt
      ~ch:(fun ~hop:_ -> Some 1)
      ()
  done

let ir ?proto ?instances ?verify ~nodes ~gpus_per_node () =
  let num_ranks = nodes * gpus_per_node in
  let coll = Collective.make Collective.Allgather ~num_ranks () in
  Compile.ir ~name:"hierarchical-allgather" ?proto ?instances ?verify coll
    (program ~nodes ~gpus_per_node)
