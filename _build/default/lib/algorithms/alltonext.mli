(** AllToNext (paper §7.4, Fig. 10) — a custom collective outside MPI.

    GPU [i] sends its buffer to GPU [i+1]; the last GPU sends nothing.
    Within a node the transfer is a direct NVLink copy, but a naive
    cross-node send uses a single InfiniBand NIC (and a single thread
    block), wasting the node's remaining NICs. AllToNext splits the buffer
    into [gpus_per_node] chunks at each node boundary, scatters them over
    NVLink to all GPUs of the sending node, ships each chunk over that
    GPU's own NIC, and gathers them on the receiving GPU — using every IB
    link in the node. Small buffers lose to the extra hops; large buffers
    win by up to 14.5x with enough parallelization ([instances]). *)

val program : nodes:int -> gpus_per_node:int -> Msccl_core.Program.t -> unit

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  nodes:int ->
  gpus_per_node:int ->
  unit ->
  Msccl_core.Ir.t
(** The collective is [Alltonext] with [chunk_factor = gpus_per_node]. *)
