(** Recursive-doubling AllGather: in step s every rank exchanges its
    current 2^s-chunk block with the partner at distance 2^s, so all blocks
    double until everyone holds everything — log R aggregated exchanges
    instead of the ring's R-1 hops. Power-of-two rank counts only. *)

val program : num_ranks:int -> Msccl_core.Program.t -> unit

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  num_ranks:int ->
  unit ->
  Msccl_core.Ir.t
(** Out-of-place AllGather with one chunk per rank. *)
