(** Collective algorithm synthesis for point-to-point topologies.

    The paper compares against SCCL (§7.5), "an automatic collective
    communication algorithm generator which considers both latency and
    bandwidth of each link". This module provides a compact synthesizer in
    that spirit for AllGather: given which GPU pairs are directly connected
    (e.g. the DGX-1's NVLink graph), it computes a round-based schedule —
    per round, every directed link may carry [link_count] chunks — using a
    rarest-first greedy flood, then emits the schedule as an ordinary
    MSCCLang program and compiles it through the standard pipeline, so the
    result is verified like any hand-written algorithm.

    On a fully-connected topology it synthesizes the 1-round broadcast; on
    the DGX-1 graph it finds 2-round schedules comparable to SCCL's
    (1,2,2) AllGather; on a ring it degenerates to the (N-1)-round ring
    AllGather. *)

type schedule = {
  rounds : (int * int * int) list list;
      (** Per round: (src, dst, origin) transfers; all transfers in a round
          read the state left by the previous round. *)
  num_ranks : int;
}

exception Synthesis_failure of string

val plan :
  ?max_rounds:int ->
  ?link_count:(int -> int -> int) ->
  num_ranks:int ->
  connected:(int -> int -> bool) ->
  unit ->
  schedule
(** Raises {!Synthesis_failure} when the graph cannot complete an AllGather
    within [max_rounds] (default 16) — e.g. when it is disconnected.
    [link_count] (default: 1 everywhere) is how many chunks a directed link
    carries per round (the DGX-1's double NVLink bricks carry 2). *)

val lower : schedule -> Msccl_core.Program.t -> unit
(** Emits the schedule as chunk routing (each round on its own channel). *)

val allgather :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  ?max_rounds:int ->
  ?link_count:(int -> int -> int) ->
  num_ranks:int ->
  connected:(int -> int -> bool) ->
  unit ->
  Msccl_core.Ir.t
(** [plan] + [lower] + compile + verify. *)
