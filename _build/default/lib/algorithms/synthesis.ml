open Msccl_core

type schedule = {
  rounds : (int * int * int) list list;
  num_ranks : int;
}

exception Synthesis_failure of string

let fail fmt = Format.kasprintf (fun s -> raise (Synthesis_failure s)) fmt

(* Rarest-first greedy flood. [have.(r)] is the set of chunk origins rank r
   holds, as a bitmask (num_ranks <= 62). All decisions in a round use the
   state at the round's start, so transfers within a round are parallel. *)
let plan ?(max_rounds = 16) ?(link_count = fun _ _ -> 1) ~num_ranks ~connected
    () =
  if num_ranks < 1 || num_ranks > 62 then
    fail "synthesis supports 1..62 ranks (got %d)" num_ranks;
  let have = Array.init num_ranks (fun r -> 1 lsl r) in
  let all = (1 lsl num_ranks) - 1 in
  let done_ () = Array.for_all (fun h -> h = all) have in
  let holders o =
    let n = ref 0 in
    Array.iter (fun h -> if h land (1 lsl o) <> 0 then incr n) have;
    !n
  in
  let rounds = ref [] in
  let round_no = ref 0 in
  while not (done_ ()) do
    if !round_no >= max_rounds then
      fail "no AllGather within %d rounds (disconnected topology?)" max_rounds;
    incr round_no;
    let snapshot = Array.copy have in
    let transfers = ref [] in
    for src = 0 to num_ranks - 1 do
      for dst = 0 to num_ranks - 1 do
        if src <> dst && connected src dst then begin
          (* Chunks src had at the round start and dst still lacks,
             rarest first. *)
          let missing =
            List.init num_ranks Fun.id
            |> List.filter (fun o ->
                   snapshot.(src) land (1 lsl o) <> 0
                   && have.(dst) land (1 lsl o) = 0)
            |> List.sort (fun a b ->
                   match Int.compare (holders a) (holders b) with
                   | 0 -> Int.compare a b
                   | c -> c)
          in
          List.iteri
            (fun i o ->
              if i < link_count src dst then begin
                transfers := (src, dst, o) :: !transfers;
                have.(dst) <- have.(dst) lor (1 lsl o)
              end)
            missing
        end
      done
    done;
    if !transfers = [] then
      fail "stuck: no link can make progress (disconnected topology?)";
    rounds := List.rev !transfers :: !rounds
  done;
  { rounds = List.rev !rounds; num_ranks }

let lower sched prog =
  (* Own chunk into place first. *)
  for r = 0 to sched.num_ranks - 1 do
    let c = Program.chunk prog ~rank:r Buffer_id.Input ~index:0 () in
    ignore (Program.copy c ~rank:r Buffer_id.Output ~index:r ())
  done;
  List.iteri
    (fun round transfers ->
      List.iter
        (fun (src, dst, origin) ->
          let c =
            Program.chunk prog ~rank:src Buffer_id.Output ~index:origin ()
          in
          ignore
            (Program.copy c ~rank:dst Buffer_id.Output ~index:origin
               ~ch:round ()))
        transfers)
    sched.rounds

let allgather ?proto ?instances ?verify ?max_rounds ?link_count ~num_ranks
    ~connected () =
  let sched = plan ?max_rounds ?link_count ~num_ranks ~connected () in
  let coll = Collective.make Collective.Allgather ~num_ranks () in
  Compile.ir
    ~name:(Printf.sprintf "synth-allgather-%dr" (List.length sched.rounds))
    ?proto ?instances ?verify coll (lower sched)
