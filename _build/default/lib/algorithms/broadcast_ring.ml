open Msccl_core

let program ~num_ranks ~root ~chunk_factor ~channels prog =
  for i = 0 to chunk_factor - 1 do
    let ch = Some (i mod channels) in
    let c = Program.chunk prog ~rank:root Buffer_id.Input ~index:i () in
    let own = Program.copy c ~rank:root Buffer_id.Output ~index:i () in
    let cur = ref own in
    for hop = 1 to num_ranks - 1 do
      let next = (root + hop) mod num_ranks in
      cur := Program.copy !cur ~rank:next Buffer_id.Output ~index:i ?ch ()
    done
  done

let ir ?proto ?(channels = 1) ?(chunk_factor = 1) ?instances ?verify
    ~num_ranks ~root () =
  let coll =
    Collective.make (Collective.Broadcast root) ~num_ranks ~chunk_factor ()
  in
  Compile.ir
    ~name:(Printf.sprintf "ring-broadcast-ch%d" channels)
    ?proto ?instances ?verify coll
    (program ~num_ranks ~root ~chunk_factor ~channels)
