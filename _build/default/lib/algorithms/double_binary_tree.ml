open Msccl_core

(* Complete binary tree over logical ids 0..R-1 (children of i: 2i+1,
   2i+2), with a per-tree rank relabeling. *)
let children num_ranks i =
  List.filter (fun c -> c < num_ranks) [ (2 * i) + 1; (2 * i) + 2 ]

let tree_pass prog ~num_ranks ~relabel ~index ~ch =
  (* Reduce up: deepest logical nodes first. *)
  for p = num_ranks - 1 downto 0 do
    List.iter
      (fun child ->
        let acc =
          Program.chunk prog ~rank:(relabel p) Buffer_id.Input ~index ()
        in
        let sub =
          Program.chunk prog ~rank:(relabel child) Buffer_id.Input ~index ()
        in
        ignore (Program.reduce acc sub ~ch ()))
      (children num_ranks p)
  done;
  (* Broadcast down. *)
  for p = 0 to num_ranks - 1 do
    List.iter
      (fun child ->
        let full =
          Program.chunk prog ~rank:(relabel p) Buffer_id.Input ~index ()
        in
        ignore
          (Program.copy full ~rank:(relabel child) Buffer_id.Input ~index ~ch
             ()))
      (children num_ranks p)
  done

let program ~num_ranks ~chunks_per_tree prog =
  for i = 0 to chunks_per_tree - 1 do
    (* Tree 0: identity labeling, lower half of the chunks, channel 0. *)
    tree_pass prog ~num_ranks ~relabel:Fun.id ~index:i ~ch:0;
    (* Tree 1: shifted labeling, upper half, channel 1. *)
    tree_pass prog ~num_ranks
      ~relabel:(fun x -> (x + 1) mod num_ranks)
      ~index:(chunks_per_tree + i) ~ch:1
  done

let ir ?proto ?instances ?(chunks_per_tree = 1) ?verify ~num_ranks () =
  let coll =
    Collective.make Collective.Allreduce ~num_ranks
      ~chunk_factor:(2 * chunks_per_tree)
      ~inplace:true ()
  in
  Compile.ir ~name:"double-binary-tree-allreduce" ?proto ?instances ?verify
    coll (program ~num_ranks ~chunks_per_tree)
