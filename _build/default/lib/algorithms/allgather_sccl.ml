open Msccl_core

let num_ranks = 8

let quad r = r / 4 * 4

let program prog =
  (* Own chunk into place. *)
  for r = 0 to num_ranks - 1 do
    let own = Program.chunk prog ~rank:r Buffer_id.Input ~index:0 () in
    ignore (Program.copy own ~rank:r Buffer_id.Output ~index:r ());
    (* Step 1: broadcast within the quad (all pairs NVLink-connected). *)
    for peer = quad r to quad r + 3 do
      if peer <> r then begin
        let c = Program.chunk prog ~rank:r Buffer_id.Input ~index:0 () in
        ignore (Program.copy c ~rank:peer Buffer_id.Output ~index:r ())
      end
    done
  done;
  (* Step 2: ship the whole quad block to the cross partner (g xor 4 —
     exactly the DGX-1 pairs with two NVLink bricks each: 0-4, 1-5, 2-6, 3-7). *)
  for r = 0 to num_ranks - 1 do
    let partner = r lxor 4 in
    let block =
      Program.chunk prog ~rank:r Buffer_id.Output ~index:(quad r) ~count:4 ()
    in
    ignore (Program.copy block ~rank:partner Buffer_id.Output ~index:(quad r) ())
  done

let ir ?proto ?instances ?verify () =
  let coll = Collective.make Collective.Allgather ~num_ranks () in
  Compile.ir ~name:"sccl-allgather-122" ?proto ?instances ?verify coll program
