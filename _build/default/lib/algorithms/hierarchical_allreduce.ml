open Msccl_core

let program ~nodes ~gpus_per_node ~intra_parallel prog =
  let n = nodes and g = gpus_per_node in
  if intra_parallel < 1 || n mod intra_parallel <> 0 then
    invalid_arg "Hierarchical_allreduce: intra_parallel must divide nodes";
  let p = intra_parallel in
  let sub = n / p in
  let inter_ch = p in
  let const c ~hop:_ = Some c in
  (* Phase 1: intra-node ReduceScatter, parallelized over channels 0..p-1
     (each rank's aggregated count=N slot splits into p count=N/p parts). *)
  for node = 0 to n - 1 do
    let local_ranks = List.init g (fun i -> (node * g) + i) in
    for j = 0 to p - 1 do
      Patterns.ring_reduce_scatter prog ~ranks:local_ranks ~offset:(j * sub)
        ~count:sub ~stride:n ~ch:(const j) ()
    done
  done;
  (* Phases 2+3: inter-node ReduceScatter then AllGather among same-index
     GPUs, on their own channel. *)
  for gpu = 0 to g - 1 do
    let cross_ranks = List.init n (fun i -> (i * g) + gpu) in
    Patterns.ring_reduce_scatter prog ~ranks:cross_ranks ~offset:(gpu * n)
      ~count:1 ~ch:(const inter_ch) ();
    Patterns.ring_all_gather prog ~ranks:cross_ranks ~offset:(gpu * n)
      ~count:1 ~ch:(const inter_ch) ()
  done;
  (* Phase 4: intra-node AllGather, parallelized over channels p+1..2p. *)
  for node = 0 to n - 1 do
    let local_ranks = List.init g (fun i -> (node * g) + i) in
    for j = 0 to p - 1 do
      Patterns.ring_all_gather prog ~ranks:local_ranks ~offset:(j * sub)
        ~count:sub ~stride:n
        ~ch:(const (inter_ch + 1 + j))
        ()
    done
  done

let ir ?proto ?instances ?intra_parallel ?verify ~nodes ~gpus_per_node () =
  let intra_parallel = Option.value intra_parallel ~default:nodes in
  let num_ranks = nodes * gpus_per_node in
  let coll =
    Collective.make Collective.Allreduce ~num_ranks ~chunk_factor:num_ranks
      ~inplace:true ()
  in
  Compile.ir ~name:"hierarchical-allreduce" ?proto ?instances ?verify coll
    (program ~nodes ~gpus_per_node ~intra_parallel)
