open Msccl_core

let program ~num_ranks prog =
  for src = 0 to num_ranks - 1 do
    for dst = 0 to num_ranks - 1 do
      let c = Program.chunk prog ~rank:src Buffer_id.Input ~index:dst () in
      ignore (Program.copy c ~rank:dst Buffer_id.Output ~index:src ())
    done
  done

let ir ?proto ?instances ?verify ~num_ranks () =
  let coll = Collective.make Collective.Alltoall ~num_ranks () in
  Compile.ir ~name:"naive-alltoall" ?proto ?instances ?verify coll
    (program ~num_ranks)
