(** Naive one-step AllToAll: every pair of GPUs exchanges its chunk
    directly, the way NCCL implements AllToAll as grouped point-to-point
    sends and receives (paper §7.3). One communication step, but
    [ranks - 1] separate (small) messages per GPU — expensive over
    InfiniBand, which is what the Two-Step algorithm fixes. *)

val program : num_ranks:int -> Msccl_core.Program.t -> unit

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  num_ranks:int ->
  unit ->
  Msccl_core.Ir.t
