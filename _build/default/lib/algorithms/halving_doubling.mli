(** Recursive halving-doubling AllReduce (Rabenseifner's algorithm).

    For a power-of-two rank count R: a reduce-scatter by recursive vector
    halving (log R exchange steps, each rank pairing with a partner at
    distance R/2, R/4, ...) followed by an all-gather by recursive vector
    doubling. Moves the same 2(R-1)/R volume as Ring but in 2·log R steps
    instead of 2(R-1) — the classic latency-optimal tradeoff from the MPI
    literature the paper builds on [41], and a natural algorithm to write
    in MSCCLang. Every exchange is a single aggregated transfer, which
    exercises multi-count sends heavily. *)

val program : num_ranks:int -> Msccl_core.Program.t -> unit
(** Raises [Invalid_argument] unless [num_ranks] is a power of two >= 2. *)

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  num_ranks:int ->
  unit ->
  Msccl_core.Ir.t
(** In-place AllReduce with [chunk_factor = num_ranks]. *)
