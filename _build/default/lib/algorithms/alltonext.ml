open Msccl_core

(* Scratch slot layout on every relay GPU: slot 0 stages the chunk it
   forwards for its node's boundary GPU; slot 1 receives the chunk it
   relays on the destination side. *)
let out_slot = 0

let in_slot = 1

let program ~nodes ~gpus_per_node prog =
  let g_cnt = gpus_per_node in
  let rank n g = (n * g_cnt) + g in
  for n = 0 to nodes - 1 do
    for g = 0 to g_cnt - 1 do
      let r = rank n g in
      if g < g_cnt - 1 then begin
        (* Within a node: one aggregated direct copy to the next GPU. *)
        let c =
          Program.chunk prog ~rank:r Buffer_id.Input ~index:0 ~count:g_cnt ()
        in
        ignore (Program.copy c ~rank:(r + 1) Buffer_id.Output ~index:0 ())
      end
      else if n < nodes - 1 then
        (* Node boundary: scatter over NVLink, cross over every NIC,
           gather on the next node's first GPU (Fig. 10). *)
        let dst = rank (n + 1) 0 in
        for j = 0 to g_cnt - 1 do
          let piece = Program.chunk prog ~rank:r Buffer_id.Input ~index:j () in
          let staged =
            if j = g_cnt - 1 then piece
            else
              Program.copy piece ~rank:(rank n j) Buffer_id.Scratch
                ~index:out_slot ()
          in
          if j = 0 then
            (* The relay on the destination side is the destination. *)
            ignore (Program.copy staged ~rank:dst Buffer_id.Output ~index:0 ())
          else begin
            let landed =
              Program.copy staged ~rank:(rank (n + 1) j) Buffer_id.Scratch
                ~index:in_slot ()
            in
            ignore (Program.copy landed ~rank:dst Buffer_id.Output ~index:j ())
          end
        done
    done
  done

let ir ?proto ?instances ?verify ~nodes ~gpus_per_node () =
  let num_ranks = nodes * gpus_per_node in
  let coll =
    Collective.make Collective.Alltonext ~num_ranks ~chunk_factor:gpus_per_node
      ()
  in
  Compile.ir ~name:"alltonext" ?proto ?instances ?verify coll
    (program ~nodes ~gpus_per_node)
