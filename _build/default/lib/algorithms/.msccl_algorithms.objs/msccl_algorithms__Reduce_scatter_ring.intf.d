lib/algorithms/reduce_scatter_ring.mli: Msccl_core Msccl_topology
