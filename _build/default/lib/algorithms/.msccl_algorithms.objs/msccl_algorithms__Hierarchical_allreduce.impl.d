lib/algorithms/hierarchical_allreduce.ml: Collective Compile List Msccl_core Option Patterns
