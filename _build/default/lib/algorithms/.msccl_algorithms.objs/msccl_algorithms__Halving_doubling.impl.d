lib/algorithms/halving_doubling.ml: Array Buffer_id Collective Compile List Msccl_core Program
