lib/algorithms/alltonext.ml: Buffer_id Collective Compile Msccl_core Program
