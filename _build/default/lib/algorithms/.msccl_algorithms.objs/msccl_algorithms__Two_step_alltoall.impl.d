lib/algorithms/two_step_alltoall.ml: Buffer_id Collective Compile Msccl_core Program
