lib/algorithms/synthesis.mli: Msccl_core Msccl_topology
