lib/algorithms/reduce_scatter_ring.ml: Buffer_id Collective Compile Fun List Msccl_core Patterns Printf Program
