lib/algorithms/synthesis.ml: Array Buffer_id Collective Compile Format Fun Int List Msccl_core Printf Program
