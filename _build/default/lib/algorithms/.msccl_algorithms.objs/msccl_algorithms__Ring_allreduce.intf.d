lib/algorithms/ring_allreduce.mli: Msccl_core Msccl_topology
