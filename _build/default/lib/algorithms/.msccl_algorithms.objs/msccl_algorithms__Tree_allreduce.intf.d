lib/algorithms/tree_allreduce.mli: Msccl_core Msccl_topology
