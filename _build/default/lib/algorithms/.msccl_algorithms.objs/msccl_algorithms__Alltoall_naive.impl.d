lib/algorithms/alltoall_naive.ml: Buffer_id Collective Compile Msccl_core Program
