lib/algorithms/allgather_sccl.ml: Buffer_id Collective Compile Msccl_core Program
