lib/algorithms/halving_doubling.mli: Msccl_core Msccl_topology
