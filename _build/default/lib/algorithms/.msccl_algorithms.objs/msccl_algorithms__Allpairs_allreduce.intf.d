lib/algorithms/allpairs_allreduce.mli: Msccl_core Msccl_topology
