lib/algorithms/two_step_alltoall.mli: Msccl_core Msccl_topology
