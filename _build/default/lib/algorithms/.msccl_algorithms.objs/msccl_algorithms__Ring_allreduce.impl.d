lib/algorithms/ring_allreduce.ml: Array Collective Compile Fun Int List Msccl_core Patterns Printf
