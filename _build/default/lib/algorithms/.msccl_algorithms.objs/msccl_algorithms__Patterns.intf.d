lib/algorithms/patterns.mli: Msccl_core
