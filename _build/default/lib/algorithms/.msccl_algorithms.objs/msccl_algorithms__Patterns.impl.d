lib/algorithms/patterns.ml: Buffer_id List Msccl_core Option Program
