lib/algorithms/double_binary_tree.ml: Buffer_id Collective Compile Fun List Msccl_core Program
