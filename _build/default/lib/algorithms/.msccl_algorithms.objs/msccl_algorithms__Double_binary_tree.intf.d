lib/algorithms/double_binary_tree.mli: Msccl_core Msccl_topology
