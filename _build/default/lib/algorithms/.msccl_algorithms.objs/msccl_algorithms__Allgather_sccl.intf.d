lib/algorithms/allgather_sccl.mli: Msccl_core Msccl_topology
