lib/algorithms/allpairs_allreduce.ml: Buffer_id Collective Compile Msccl_core Program
