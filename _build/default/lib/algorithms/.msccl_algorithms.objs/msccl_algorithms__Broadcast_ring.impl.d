lib/algorithms/broadcast_ring.ml: Buffer_id Collective Compile Msccl_core Printf Program
