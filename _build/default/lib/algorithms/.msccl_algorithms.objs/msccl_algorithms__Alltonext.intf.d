lib/algorithms/alltonext.mli: Msccl_core Msccl_topology
