lib/algorithms/hierarchical_allgather.ml: Buffer_id Collective Compile List Msccl_core Patterns Program
