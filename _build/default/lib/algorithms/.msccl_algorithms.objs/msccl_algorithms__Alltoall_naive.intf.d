lib/algorithms/alltoall_naive.mli: Msccl_core Msccl_topology
