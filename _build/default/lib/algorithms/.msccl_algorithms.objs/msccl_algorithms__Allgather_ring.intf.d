lib/algorithms/allgather_ring.mli: Msccl_core Msccl_topology
