lib/algorithms/recursive_doubling.mli: Msccl_core Msccl_topology
