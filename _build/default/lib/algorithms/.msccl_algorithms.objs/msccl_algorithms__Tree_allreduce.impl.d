lib/algorithms/tree_allreduce.ml: Buffer_id Collective Compile List Msccl_core Printf Program
