lib/algorithms/recursive_doubling.ml: Buffer_id Collective Compile Msccl_core Program
