lib/algorithms/broadcast_ring.mli: Msccl_core Msccl_topology
