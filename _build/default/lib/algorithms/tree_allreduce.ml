open Msccl_core

(* Complete binary tree on rank ids: children of i are 2i+1 and 2i+2. *)
let children num_ranks i =
  List.filter (fun c -> c < num_ranks) [ (2 * i) + 1; (2 * i) + 2 ]

let program ~num_ranks ~chunk_factor ~channels prog =
  for i = 0 to chunk_factor - 1 do
    let ch = Some (i mod channels) in
    (* Reduce phase, deepest ranks first so every parent sees finished
       subtrees. *)
    for p = num_ranks - 1 downto 0 do
      List.iter
        (fun child ->
          let acc = Program.chunk prog ~rank:p Buffer_id.Input ~index:i () in
          let sub =
            Program.chunk prog ~rank:child Buffer_id.Input ~index:i ()
          in
          ignore (Program.reduce acc sub ?ch ()))
        (children num_ranks p)
    done;
    (* Broadcast phase, top down. *)
    for p = 0 to num_ranks - 1 do
      List.iter
        (fun child ->
          let full = Program.chunk prog ~rank:p Buffer_id.Input ~index:i () in
          ignore (Program.copy full ~rank:child Buffer_id.Input ~index:i ?ch ()))
        (children num_ranks p)
    done
  done

let ir ?proto ?(channels = 1) ?(chunk_factor = 1) ?instances ?verify
    ~num_ranks () =
  let coll =
    Collective.make Collective.Allreduce ~num_ranks ~chunk_factor
      ~inplace:true ()
  in
  Compile.ir
    ~name:(Printf.sprintf "tree-allreduce-ch%d" channels)
    ?proto ?instances ?verify coll
    (program ~num_ranks ~chunk_factor ~channels)
