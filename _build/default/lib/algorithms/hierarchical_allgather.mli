(** Hierarchical AllGather: an intra-node ring gathers each node's block,
    then same-index GPUs run an inter-node ring exchanging whole node
    blocks as aggregated transfers — the AllGather counterpart of the
    paper's §2 hierarchical AllReduce, with the same channel scheme (intra
    on channel 0, inter on channel 1) and cross-phase pipelining. *)

val program : nodes:int -> gpus_per_node:int -> Msccl_core.Program.t -> unit

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  nodes:int ->
  gpus_per_node:int ->
  unit ->
  Msccl_core.Ir.t
(** Out-of-place AllGather with one chunk per rank. *)
