open Msccl_core

(* Fig. 9, with ranks (n,g) encoded as n * gpus_per_node + g. The input
   buffer of every rank has one chunk per destination rank; out[src] on the
   destination holds the chunk. *)
let program ?(aggregate = true) ~nodes ~gpus_per_node prog =
  let g_cnt = gpus_per_node in
  let rank n g = (n * g_cnt) + g in
  for n = 0 to nodes - 1 do
    for g = 0 to g_cnt - 1 do
      for m = 0 to nodes - 1 do
        for i = 0 to g_cnt - 1 do
          (* Chunk sitting on (m,i), destined to (n,g). *)
          let c =
            Program.chunk prog ~rank:(rank m i) Buffer_id.Input
              ~index:(rank n g) ()
          in
          if n = m then
            (* Same node: deliver directly. *)
            ignore
              (Program.copy c ~rank:(rank n g) Buffer_id.Output
                 ~index:(rank m i) ())
          else
            (* Stage on the gateway (m,g) for an aggregated IB send. *)
            ignore
              (Program.copy c ~rank:(rank m g) Buffer_id.Scratch
                 ~index:((n * g_cnt) + i) ())
        done
      done
    done
  done;
  (* Coalesced IB sends: G staged chunks in one transfer (or G separate
     sends when the aggregation ablation is disabled). *)
  for n = 0 to nodes - 1 do
    for g = 0 to g_cnt - 1 do
      for m = 0 to nodes - 1 do
        if n <> m then
          if aggregate then begin
            let c =
              Program.chunk prog ~rank:(rank m g) Buffer_id.Scratch
                ~index:(n * g_cnt) ~count:g_cnt ()
            in
            ignore
              (Program.copy c ~rank:(rank n g) Buffer_id.Output
                 ~index:(m * g_cnt) ())
          end
          else
            (* Each forward fuses a receive from local GPU i with a send
               to node n; a Latin-square channel assignment (i + n) keeps
               every (receive, send) connection pair on its own thread
               block. *)
            for i = 0 to g_cnt - 1 do
              let c =
                Program.chunk prog ~rank:(rank m g) Buffer_id.Scratch
                  ~index:((n * g_cnt) + i) ()
              in
              ignore
                (Program.copy c ~rank:(rank n g) Buffer_id.Output
                   ~index:((m * g_cnt) + i)
                   ~ch:((i + n) mod max g_cnt nodes)
                   ())
            done
      done
    done
  done

let ir ?proto ?instances ?aggregate ?verify ~nodes ~gpus_per_node () =
  let num_ranks = nodes * gpus_per_node in
  let coll = Collective.make Collective.Alltoall ~num_ranks () in
  Compile.ir ~name:"two-step-alltoall" ?proto ?instances ?verify coll
    (program ?aggregate ~nodes ~gpus_per_node)
