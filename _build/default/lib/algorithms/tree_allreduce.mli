(** Tree AllReduce: reduce up a binary tree, broadcast back down.

    NCCL pairs Ring with Tree and picks Tree for small buffers on
    multi-node systems because its latency grows with the tree depth
    (2 log R steps) rather than with 2(R-1) ring steps; the NCCL baseline
    model uses this algorithm for that regime. *)

val program :
  num_ranks:int -> chunk_factor:int -> channels:int ->
  Msccl_core.Program.t -> unit

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?channels:int ->
  ?chunk_factor:int ->
  ?instances:int ->
  ?verify:bool ->
  num_ranks:int ->
  unit ->
  Msccl_core.Ir.t
(** In-place AllReduce with [chunk_factor] chunks (default 1), pipelined
    over chunks with channels rotating per chunk. *)
