(** Hierarchical AllReduce (paper §2, Fig. 1/3, evaluated in §7.2).

    On [nodes] x [gpus_per_node] GPUs with [nodes * gpus_per_node] chunks,
    four phases run: an intra-node ReduceScatter (each GPU ends with the
    node-local sum of its [nodes] chunks), an inter-node ReduceScatter
    among same-index GPUs (scattering the global sum), an inter-node
    AllGather and an intra-node AllGather.

    Channels follow the paper's manual schedule: the intra-node
    ReduceScatters use channels [0 .. intra_parallel-1] (the
    [parallelize(N)] directive of §5.1 splits each aggregated [count = N]
    transfer into parallel single-chunk transfers on distinct channels),
    the inter-node phases use the next channel, and the intra-node
    AllGather the ones after that. Pipelining across the four phases (Fig.
    6) then happens inside the single MSCCLang kernel — the advantage over
    composing NCCL collectives (§7.2). *)

val program :
  nodes:int -> gpus_per_node:int -> intra_parallel:int ->
  Msccl_core.Program.t -> unit

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?intra_parallel:int ->
  ?verify:bool ->
  nodes:int ->
  gpus_per_node:int ->
  unit ->
  Msccl_core.Ir.t
(** [intra_parallel] defaults to [nodes] (full parallelization, as in the
    paper's listing); it must divide [nodes]. *)
