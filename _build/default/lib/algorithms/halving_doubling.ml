open Msccl_core

let is_pow2 n = n > 0 && n land (n - 1) = 0

let program ~num_ranks prog =
  if not (is_pow2 num_ranks && num_ranks >= 2) then
    invalid_arg "Halving_doubling: num_ranks must be a power of two >= 2";
  let r_cnt = num_ranks in
  (* Per-rank segment of responsibility, narrowing during the halving
     phase. *)
  let lo = Array.make r_cnt 0 in
  let len = Array.make r_cnt r_cnt in
  let steps = ref [] in
  let d = ref (r_cnt / 2) in
  while !d >= 1 do
    steps := !d :: !steps;
    (* Exchange: each rank reduces its copy of the partner's half into the
       partner. Lower-bit ranks keep the lower half. *)
    for r = 0 to r_cnt - 1 do
      if r land !d = 0 then begin
        let partner = r lxor !d in
        let half = len.(r) / 2 in
        let send_pair a b =
          (* a's copy of b's half accumulates into b *)
          let b_lo = if b land !d = 0 then lo.(b) else lo.(b) + half in
          let dst = Program.chunk prog ~rank:b Buffer_id.Input ~index:b_lo ~count:half () in
          let src = Program.chunk prog ~rank:a Buffer_id.Input ~index:b_lo ~count:half () in
          ignore (Program.reduce dst src ())
        in
        send_pair r partner;
        send_pair partner r
      end
    done;
    for r = 0 to r_cnt - 1 do
      let half = len.(r) / 2 in
      if r land !d <> 0 then lo.(r) <- lo.(r) + half;
      len.(r) <- half
    done;
    d := !d / 2
  done;
  (* Doubling phase: replay the distances in reverse, copying each rank's
     (now fully reduced) segment to its partner. *)
  List.iter
    (fun d ->
      for r = 0 to r_cnt - 1 do
        if r land d = 0 then begin
          let partner = r lxor d in
          let copy_pair a b =
            let c =
              Program.chunk prog ~rank:a Buffer_id.Input ~index:lo.(a)
                ~count:len.(a) ()
            in
            ignore (Program.copy c ~rank:b Buffer_id.Input ~index:lo.(a) ())
          in
          copy_pair r partner;
          copy_pair partner r
        end
      done;
      for r = 0 to r_cnt - 1 do
        if r land d <> 0 then lo.(r) <- lo.(r) - len.(r);
        len.(r) <- len.(r) * 2
      done)
    !steps

let ir ?proto ?instances ?verify ~num_ranks () =
  let coll =
    Collective.make Collective.Allreduce ~num_ranks ~chunk_factor:num_ranks
      ~inplace:true ()
  in
  Compile.ir ~name:"halving-doubling-allreduce" ?proto ?instances ?verify
    coll (program ~num_ranks)
