(** The SCCL "(1,2,2)" AllGather for DGX-1 (paper §7.5, Fig. 11).

    SCCL synthesizes latency/bandwidth-optimal algorithms for the DGX-1's
    point-to-point NVLink topology; its (1,2,2) AllGather completes in two
    steps. Reimplemented in MSCCLang (as the paper does for its Fig. 11
    comparison), using only NVLink-connected pairs of the DGX-1:

    - step 1: every GPU sends its chunk to the three other GPUs of its
      quad ({0..3} or {4..7} — both are NVLink cliques);
    - step 2: every GPU forwards its quad's four chunks to its cross-quad
      partner ([g xor 4]) as one aggregated transfer.

    Running this IR under the Simple/LL protocols vs. the SCCL direct-copy
    protocol reproduces Fig. 11. *)

val program : Msccl_core.Program.t -> unit

val ir :
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  unit ->
  Msccl_core.Ir.t
(** Always 8 ranks, one chunk per rank (out-of-place). *)
