lib/topology/topology.ml: Array Format Link List Printf
