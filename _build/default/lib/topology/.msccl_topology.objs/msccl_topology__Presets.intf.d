lib/topology/presets.mli: Link Topology
