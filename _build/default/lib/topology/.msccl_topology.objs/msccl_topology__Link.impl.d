lib/topology/link.ml: Format
