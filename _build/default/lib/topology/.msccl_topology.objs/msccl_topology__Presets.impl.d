lib/topology/presets.ml: Array Hashtbl Link List Printf Topology
