lib/topology/protocol.ml: Format String
