lib/topology/protocol.mli: Format
