lib/topology/topology.mli: Format Link
