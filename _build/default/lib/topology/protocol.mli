(** Communication protocols of the MSCCLang runtime (paper §6.1).

    NCCL implements three protocols that trade off latency and bandwidth:

    - [Simple] has the highest bandwidth and the highest latency: every slot
      hand-off requires memory fences and flag synchronization, but the full
      wire bandwidth carries payload.
    - [LL] (low latency) piggybacks a 4-byte flag on every 4 bytes of data,
      avoiding fences entirely. Latency is lowest; only half the wire
      bandwidth carries payload.
    - [LL128] transmits 120 payload bytes per 128-byte line, giving 93.75 %
      efficiency with latency between the other two.

    The protocol also defines the size of the intermediate FIFO buffer and
    the number of slots it is divided into; chunks larger than a slot are
    split into tiles by the interpreter's pipelining loop (paper §6.2). *)

type t =
  | Simple
  | LL
  | LL128
  | Sccl
      (** SCCL's direct-copy protocol (paper §7.5): the sender writes
          straight into the destination buffer, so the receiver performs no
          copy out of an intermediate FIFO — full bandwidth efficiency and a
          smaller memory footprint than [Simple], at the cost of a
          rendezvous handshake (higher α than [LL]) and a single outstanding
          transfer per connection. The paper notes this protocol "can also
          be implemented in MSCCLang Simple protocols" as future work; this
          implementation provides it. *)

val all : t list
(** All protocols, in [Simple; LL; LL128; Sccl] order. *)

val name : t -> string
(** Display name, e.g. ["LL128"]. *)

val of_string : string -> t option
(** Inverse of {!name}, case-insensitive. *)

val efficiency : t -> float
(** Fraction of raw link bandwidth available for payload: 1.0 for [Simple]
    and [Sccl], 0.5 for [LL], 0.9375 (= 120/128) for [LL128]. *)

val alpha_scale : t -> float
(** Multiplier applied to a link's base (Simple) per-message setup latency.
    [LL] avoids fences so its scale is the smallest. *)

val slot_bytes : t -> int
(** Size in bytes of one FIFO slot of the intermediate buffer. Transfers
    larger than this are tiled (paper §6.1: 512 KB ≤ b ≤ 5 MB overall buffer
    divided into slots, exact values defined by the protocol). *)

val num_slots : t -> int
(** Number of FIFO slots [s] per connection (1 ≤ s ≤ 8): how many sends may
    complete before any receive drains the buffer. *)

val receiver_copies : t -> bool
(** Whether the receiving thread block copies data out of an intermediate
    FIFO slot (true for the NCCL protocols, false for [Sccl]'s direct
    copy). *)

val pp : Format.formatter -> t -> unit
