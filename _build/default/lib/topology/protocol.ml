type t =
  | Simple
  | LL
  | LL128
  | Sccl

let all = [ Simple; LL; LL128; Sccl ]

let name = function
  | Simple -> "Simple"
  | LL -> "LL"
  | LL128 -> "LL128"
  | Sccl -> "SCCL"

let of_string s =
  match String.lowercase_ascii s with
  | "simple" -> Some Simple
  | "ll" -> Some LL
  | "ll128" -> Some LL128
  | "sccl" -> Some Sccl
  | _ -> None

let efficiency = function
  | Simple | Sccl -> 1.0
  | LL -> 0.5
  | LL128 -> 120.0 /. 128.0

let alpha_scale = function
  | Simple -> 1.0
  | LL -> 0.18
  | LL128 -> 0.42
  | Sccl -> 0.6

let slot_bytes = function
  | Simple -> 512 * 1024
  | LL -> 32 * 1024
  | LL128 -> 120 * 1024
  | Sccl -> 1024 * 1024

let num_slots = function
  | Simple | LL | LL128 -> 8
  | Sccl -> 2

let receiver_copies = function
  | Simple | LL | LL128 -> true
  | Sccl -> false

let pp fmt t = Format.pp_print_string fmt (name t)
