type kind =
  | Nvlink
  | Nvswitch
  | Pcie
  | Infiniband
  | Host

let kind_name = function
  | Nvlink -> "NVLink"
  | Nvswitch -> "NVSwitch"
  | Pcie -> "PCIe"
  | Infiniband -> "InfiniBand"
  | Host -> "Host"

let pp_kind fmt k = Format.pp_print_string fmt (kind_name k)

type t = {
  kind : kind;
  bandwidth : float;
  alpha : float;
  tb_cap : float;
}

let gb = 1e9

let nvlink_a100 =
  { kind = Nvswitch; bandwidth = 300. *. gb; alpha = 4.0e-6; tb_cap = 23. *. gb }

let nvlink_v100 =
  { kind = Nvswitch; bandwidth = 150. *. gb; alpha = 4.5e-6; tb_cap = 20. *. gb }

let ib_hdr =
  { kind = Infiniband; bandwidth = 25. *. gb; alpha = 14.0e-6; tb_cap = 13. *. gb }

let pcie_gen4 =
  { kind = Pcie; bandwidth = 26. *. gb; alpha = 6.0e-6; tb_cap = 15. *. gb }

let host_shm =
  { kind = Host; bandwidth = 12. *. gb; alpha = 9.0e-6; tb_cap = 10. *. gb }
