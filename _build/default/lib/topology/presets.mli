(** Ready-made cluster topologies matching the paper's evaluation systems
    (§7, Fig. 7) plus a generic hierarchical builder for tests/examples. *)

val ndv4 : nodes:int -> Topology.t
(** Azure ND A100 v4: [nodes] nodes of 8 A100 GPUs fully connected through
    NVSwitch (600 GB/s bidirectional per GPU). Each GPU reaches one HDR
    InfiniBand NIC at 25 GB/s for cross-node traffic (8 NICs per node; every
    pair of GPUs shares a PCIe switch to 2 NICs, i.e. one NIC per GPU). *)

val dgx2 : nodes:int -> Topology.t
(** NVIDIA DGX-2: [nodes] nodes of 16 V100 GPUs in two boards of 8,
    connected through NVSwitch (second-generation NVLink, 150 GB/s egress per
    GPU; 8x25 GB/s links between counterpart switches across boards). Each
    pair of GPUs shares one HDR InfiniBand NIC at 25 GB/s (8 NICs/node). *)

val dgx1 : unit -> Topology.t
(** NVIDIA DGX-1V: a single node of 8 V100s with direct point-to-point
    NVLink bricks (no NVSwitch), used for the SCCL comparison (§7.5).
    Pairs without a direct NVLink communicate over shared PCIe. *)

val hierarchical :
  ?name:string ->
  ?intra:Link.t ->
  ?inter:Link.t ->
  nodes:int ->
  gpus_per_node:int ->
  unit ->
  Topology.t
(** Generic two-level cluster: full intra-node connectivity with the
    [intra] link model (default {!Link.nvlink_a100}) and one [inter] NIC per
    GPU (default {!Link.ib_hdr}). Handy for scaled-down examples such as the
    paper's (N = 2, G = 3) running example. *)

val dgx1_connected : int -> int -> bool
(** [dgx1_connected a b] is [true] when GPUs [a] and [b] of a DGX-1V have a
    direct NVLink connection. Exposed so algorithms (e.g. the SCCL AllGather)
    can restrict themselves to NVLink routes. *)

val dgx1_nvlink_count : int -> int -> int
(** Number of NVLink bricks between two DGX-1V GPUs (0 when unconnected). *)
