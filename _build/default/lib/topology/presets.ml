(* Topology presets for the paper's evaluation systems. The numeric
   parameters (bandwidths, NIC counts, sharing) come from §7 and Fig. 7 of
   the paper; latency-style constants (alphas, launch overheads) are
   calibrated so the simulator reproduces the published performance shapes
   (see DESIGN.md, "Timing model"). *)

let gb = 1e9

(* Accumulates resources while building the route matrix. *)
module Builder = struct
  type t = { mutable acc : Topology.resource list; mutable next : int }

  let create () = { acc = []; next = 0 }

  let add b rname capacity =
    let rid = b.next in
    b.next <- rid + 1;
    b.acc <- { Topology.rid; rname; capacity } :: b.acc;
    rid

  let resources b = Array.of_list (List.rev b.acc)
end

(* A two-level (intra-node switch + per-GPU NIC) topology; covers NDv4 and,
   with [nic_of], DGX-2's NIC sharing between GPU pairs. *)
let two_level ~name ~nodes ~gpus_per_node ~(intra : Link.t) ~(inter : Link.t)
    ~nics_per_node ~nic_of ~sm_count ~local_bandwidth ~reduce_gamma
    ~launch_overhead ~per_tb_launch ~instr_overhead ~cross_board =
  if nodes <= 0 || gpus_per_node <= 0 then
    invalid_arg "Presets: nonpositive dimensions";
  let ranks = nodes * gpus_per_node in
  let b = Builder.create () in
  let egress = Array.init ranks (fun r ->
      Builder.add b (Printf.sprintf "rank%d/egress" r) intra.Link.bandwidth)
  in
  let ingress = Array.init ranks (fun r ->
      Builder.add b (Printf.sprintf "rank%d/ingress" r) intra.Link.bandwidth)
  in
  (* HDR InfiniBand is full duplex: each NIC gets independent egress and
     ingress resources of the line rate. *)
  let nic_out = Array.init nodes (fun n ->
      Array.init nics_per_node (fun i ->
          Builder.add b (Printf.sprintf "node%d/nic%d/out" n i)
            inter.Link.bandwidth))
  in
  let nic_in = Array.init nodes (fun n ->
      Array.init nics_per_node (fun i ->
          Builder.add b (Printf.sprintf "node%d/nic%d/in" n i)
            inter.Link.bandwidth))
  in
  (* Optional cross-board NVSwitch trunk (DGX-2: boards of 8 GPUs linked by
     8 NVLinks between counterpart switches). *)
  let xboard =
    match cross_board with
    | None -> None
    | Some (board_size, trunk_bw) ->
        let make n dir =
          Builder.add b (Printf.sprintf "node%d/xboard/%s" n dir) trunk_bw
        in
        Some
          ( board_size,
            Array.init nodes (fun n -> (make n "fwd", make n "bwd")) )
  in
  let node_of r = r / gpus_per_node in
  let gpu_of r = r mod gpus_per_node in
  let routes =
    Array.init ranks (fun src ->
        Array.init ranks (fun dst ->
            if src = dst then None
            else if node_of src = node_of dst then begin
              let hops = [ egress.(src); ingress.(dst) ] in
              let hops =
                match xboard with
                | Some (board, per_node)
                  when gpu_of src / board <> gpu_of dst / board ->
                    let fwd, bwd = per_node.(node_of src) in
                    let trunk = if gpu_of src / board = 0 then fwd else bwd in
                    hops @ [ trunk ]
                | Some _ | None -> hops
              in
              Some
                {
                  Topology.hops;
                  base_alpha = intra.Link.alpha;
                  tb_cap = intra.Link.tb_cap;
                  kind = intra.Link.kind;
                }
            end
            else
              let src_nic = nic_out.(node_of src).(nic_of (gpu_of src)) in
              let dst_nic = nic_in.(node_of dst).(nic_of (gpu_of dst)) in
              Some
                {
                  Topology.hops = [ src_nic; dst_nic ];
                  base_alpha = inter.Link.alpha;
                  tb_cap = inter.Link.tb_cap;
                  kind = inter.Link.kind;
                }))
  in
  Topology.create ~name ~num_nodes:nodes ~gpus_per_node
    ~resources:(Builder.resources b) ~routes ~sm_count ~local_bandwidth
    ~reduce_gamma ~launch_overhead ~per_tb_launch ~instr_overhead

let ndv4 ~nodes =
  two_level
    ~name:(Printf.sprintf "NDv4 %dx8xA100" nodes)
    ~nodes ~gpus_per_node:8 ~intra:Link.nvlink_a100 ~inter:Link.ib_hdr
    ~nics_per_node:8
    ~nic_of:(fun g -> g)
    ~sm_count:108 ~local_bandwidth:(50. *. gb)
    ~reduce_gamma:(1. /. (50. *. gb)) ~launch_overhead:7.0e-6
    ~per_tb_launch:0.12e-6 ~instr_overhead:0.25e-6 ~cross_board:None

let dgx2 ~nodes =
  two_level
    ~name:(Printf.sprintf "DGX-2 %dx16xV100" nodes)
    ~nodes ~gpus_per_node:16 ~intra:Link.nvlink_v100 ~inter:Link.ib_hdr
    ~nics_per_node:8
    ~nic_of:(fun g -> g / 2)
    ~sm_count:80 ~local_bandwidth:(40. *. gb)
    ~reduce_gamma:(1. /. (40. *. gb)) ~launch_overhead:8.0e-6
    ~per_tb_launch:0.15e-6 ~instr_overhead:0.3e-6
    ~cross_board:(Some (8, 1200. *. gb))

let hierarchical ?(name = "custom") ?(intra = Link.nvlink_a100)
    ?(inter = Link.ib_hdr) ~nodes ~gpus_per_node () =
  two_level ~name ~nodes ~gpus_per_node ~intra ~inter
    ~nics_per_node:gpus_per_node
    ~nic_of:(fun g -> g)
    ~sm_count:108 ~local_bandwidth:(50. *. gb)
    ~reduce_gamma:(1. /. (50. *. gb)) ~launch_overhead:7.0e-6
    ~per_tb_launch:0.12e-6 ~instr_overhead:0.25e-6 ~cross_board:None

(* DGX-1V NVLink brick counts between GPU pairs (6 links per GPU). *)
let dgx1_pairs =
  [
    ((0, 1), 1); ((0, 2), 1); ((0, 3), 2); ((0, 4), 2);
    ((1, 2), 2); ((1, 3), 1); ((1, 5), 2);
    ((2, 3), 1); ((2, 6), 2);
    ((3, 7), 2);
    ((4, 5), 1); ((4, 6), 1); ((4, 7), 2);
    ((5, 6), 2); ((5, 7), 1);
    ((6, 7), 1);
  ]

let dgx1_nvlink_count a b =
  let key = (min a b, max a b) in
  match List.assoc_opt key dgx1_pairs with
  | Some n -> n
  | None -> 0

let dgx1_connected a b = a <> b && dgx1_nvlink_count a b > 0

let dgx1 () =
  let ranks = 8 in
  let per_link_bw = 25. *. gb in
  let b = Builder.create () in
  (* A dedicated resource per directed NVLink-connected pair. *)
  let pair_res = Hashtbl.create 32 in
  List.iter
    (fun ((x, y), links) ->
      let cap = float_of_int links *. per_link_bw in
      Hashtbl.replace pair_res (x, y)
        (Builder.add b (Printf.sprintf "nvlink/%d-%d" x y) cap);
      Hashtbl.replace pair_res (y, x)
        (Builder.add b (Printf.sprintf "nvlink/%d-%d" y x) cap))
    dgx1_pairs;
  (* Shared PCIe fallback for pairs without a direct NVLink. *)
  let pcie = Array.init ranks (fun r ->
      Builder.add b (Printf.sprintf "rank%d/pcie" r) Link.pcie_gen4.Link.bandwidth)
  in
  let routes =
    Array.init ranks (fun src ->
        Array.init ranks (fun dst ->
            if src = dst then None
            else
              match Hashtbl.find_opt pair_res (src, dst) with
              | Some rid ->
                  Some
                    {
                      Topology.hops = [ rid ];
                      (* Direct NVLink bricks without NVSwitch pay a higher
                         per-message synchronization cost. *)
                      base_alpha = 12.0e-6;
                      tb_cap = 25. *. gb;
                      kind = Link.Nvlink;
                    }
              | None ->
                  Some
                    {
                      Topology.hops = [ pcie.(src); pcie.(dst) ];
                      base_alpha = Link.pcie_gen4.Link.alpha;
                      tb_cap = Link.pcie_gen4.Link.tb_cap;
                      kind = Link.Pcie;
                    }))
  in
  Topology.create ~name:"DGX-1 8xV100" ~num_nodes:1 ~gpus_per_node:8
    ~resources:(Builder.resources b) ~routes ~sm_count:80
    ~local_bandwidth:(40. *. gb) ~reduce_gamma:(1. /. (40. *. gb))
    ~launch_overhead:5.0e-6 ~per_tb_launch:0.15e-6 ~instr_overhead:0.3e-6
