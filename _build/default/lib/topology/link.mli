(** Physical interconnect kinds and their baseline parameters.

    The MSCCLang runtime inherits NCCL's support for point-to-point
    connections over NVLink, PCIe, shared host memory, InfiniBand and TCP
    (paper §6). The two evaluation systems use NVLink/NVSwitch inside a node
    and HDR InfiniBand across nodes, so those receive precise models; the
    others are provided for completeness and custom topologies. *)

type kind =
  | Nvlink  (** Direct GPU-to-GPU NVLink bricks (DGX-1 style). *)
  | Nvswitch  (** NVLink through NVSwitch crossbar (NDv4, DGX-2). *)
  | Pcie  (** PCIe peer-to-peer within a node. *)
  | Infiniband  (** GPUDirect-RDMA over an IB NIC, cross node. *)
  | Host  (** Staged through shared host memory. *)

val kind_name : kind -> string

val pp_kind : Format.formatter -> kind -> unit

type t = {
  kind : kind;
  bandwidth : float;  (** Raw unidirectional bandwidth in bytes/second. *)
  alpha : float;
      (** Per-message setup latency in seconds for the Simple protocol;
          other protocols scale it by {!Protocol.alpha_scale}. *)
  tb_cap : float;
      (** Maximum bandwidth in bytes/second that a single thread block can
          drive over this link. The paper (§5.1) observes that one A100
          thread block cannot saturate an outgoing NVLink, which is why
          chunk parallelization exists. *)
}

val nvlink_a100 : t
(** One direction of an A100's aggregate NVLink connectivity through
    NVSwitch: 12 third-generation links, 600 GB/s bidirectional (paper §7),
    i.e. 300 GB/s each way. *)

val nvlink_v100 : t
(** One direction of a V100's aggregate NVLink connectivity: 6
    second-generation links, 300 GB/s bidirectional, 150 GB/s each way. *)

val ib_hdr : t
(** One HDR InfiniBand NIC at 25 GB/s (paper §7). *)

val pcie_gen4 : t

val host_shm : t
