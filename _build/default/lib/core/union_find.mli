(** Classic union-find over dense integer ids, with path compression and
    union by rank. Used for channel classes and thread-block grouping. *)

type t

val create : int -> t

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool
