type t = {
  name : string;
  collective : Collective.t;
  mutable instrs : Instr.t array;
  scratch_sizes : int array;
}

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

type track_cell = { mutable lw : int option; mutable readers : int list }

type track = {
  t_in : track_cell array;
  t_out : track_cell array;  (* == t_in when in-place *)
  t_scr : track_cell array;
}

let fresh_track n = Array.init n (fun _ -> { lw = None; readers = [] })

let make_tracks coll scratch_sizes =
  let in_size = Collective.input_buffer_size coll in
  let out_size = Collective.output_buffer_size coll in
  Array.init coll.Collective.num_ranks (fun r ->
      let t_in = fresh_track in_size in
      let t_out =
        if coll.Collective.inplace then t_in else fresh_track out_size
      in
      { t_in; t_out; t_scr = fresh_track scratch_sizes.(r) })

let track_cells tracks coll (l : Loc.t) =
  let tr = tracks.(l.Loc.rank) in
  let arr =
    match l.Loc.buf with
    | Buffer_id.Input -> tr.t_in
    | Buffer_id.Output -> if coll.Collective.inplace then tr.t_in else tr.t_out
    | Buffer_id.Scratch -> tr.t_scr
  in
  Array.sub arr l.Loc.index l.Loc.count

let of_chunk_dag (dag : Chunk_dag.t) =
  let coll = dag.Chunk_dag.collective in
  let tracks = make_tracks coll dag.Chunk_dag.scratch_sizes in
  let acc = ref [] in
  let next = ref 0 in
  let new_instr ~rank ~op ~src ~dst ~send_peer ~recv_peer ~ch ~count
      ~comm_pred =
    let id = !next in
    incr next;
    let deps = Hashtbl.create 4 in
    let dep = function
      | Some d when d <> id -> Hashtbl.replace deps d ()
      | Some _ | None -> ()
    in
    let reads =
      (if Instr.reads_local op then Option.to_list src else [])
      @ (if op = Instr.Reduce then Option.to_list dst else [])
    in
    let writes = if Instr.writes_local op then Option.to_list dst else [] in
    List.iter
      (fun l ->
        Array.iter (fun c -> dep c.lw) (track_cells tracks coll l))
      reads;
    List.iter
      (fun l ->
        Array.iter
          (fun c ->
            dep c.lw;
            List.iter (fun r -> dep (Some r)) c.readers)
          (track_cells tracks coll l))
      writes;
    List.iter
      (fun l ->
        Array.iter
          (fun c -> c.readers <- id :: c.readers)
          (track_cells tracks coll l))
      reads;
    List.iter
      (fun l ->
        Array.iter
          (fun c ->
            c.lw <- Some id;
            c.readers <- [])
          (track_cells tracks coll l))
      writes;
    let deps =
      List.sort Int.compare (Hashtbl.fold (fun k () l -> k :: l) deps [])
    in
    let i =
      {
        Instr.id;
        rank;
        op;
        src;
        dst;
        send_peer;
        recv_peer;
        ch;
        count;
        deps;
        comm_pred;
        alive = true;
      }
    in
    acc := i :: !acc;
    i
  in
  Chunk_dag.iter dag (fun n ->
      let src = n.Chunk_dag.src and dst = n.Chunk_dag.dst in
      let ch = n.Chunk_dag.ch in
      let count = src.Loc.count in
      if Chunk_dag.is_remote n then begin
        let send =
          new_instr ~rank:src.Loc.rank ~op:Instr.Send ~src:(Some src)
            ~dst:None ~send_peer:(Some dst.Loc.rank) ~recv_peer:None ~ch
            ~count ~comm_pred:None
        in
        let recv_op =
          match n.Chunk_dag.op with
          | Chunk_dag.Copy_op -> Instr.Recv
          | Chunk_dag.Reduce_op -> Instr.Recv_reduce_copy
        in
        (* An rrc reads its own destination as the accumuland. *)
        let recv_src =
          match recv_op with
          | Instr.Recv_reduce_copy -> Some dst
          | Instr.Recv | Instr.Send | Instr.Copy | Instr.Reduce
          | Instr.Recv_copy_send | Instr.Recv_reduce_send
          | Instr.Recv_reduce_copy_send | Instr.Nop ->
              None
        in
        ignore
          (new_instr ~rank:dst.Loc.rank ~op:recv_op ~src:recv_src
             ~dst:(Some dst) ~send_peer:None ~recv_peer:(Some src.Loc.rank)
             ~ch ~count ~comm_pred:(Some send.Instr.id))
      end
      else
        let op =
          match n.Chunk_dag.op with
          | Chunk_dag.Copy_op -> Instr.Copy
          | Chunk_dag.Reduce_op -> Instr.Reduce
        in
        ignore
          (new_instr ~rank:dst.Loc.rank ~op ~src:(Some src) ~dst:(Some dst)
             ~send_peer:None ~recv_peer:None ~ch ~count ~comm_pred:None));
  {
    name = dag.Chunk_dag.name;
    collective = coll;
    instrs = Array.of_list (List.rev !acc);
    scratch_sizes = dag.Chunk_dag.scratch_sizes;
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let live t =
  Array.to_list t.instrs |> List.filter (fun i -> i.Instr.alive)

let num_live t =
  Array.fold_left (fun n i -> if i.Instr.alive then n + 1 else n) 0 t.instrs

let successors t =
  let n = Array.length t.instrs in
  let succ = Array.make n [] in
  Array.iter
    (fun (i : Instr.t) ->
      if i.Instr.alive then begin
        List.iter (fun d -> succ.(d) <- i.Instr.id :: succ.(d)) i.Instr.deps;
        match i.Instr.comm_pred with
        | Some s -> succ.(s) <- i.Instr.id :: succ.(s)
        | None -> ()
      end)
    t.instrs;
  succ

let preds_of (i : Instr.t) =
  match i.Instr.comm_pred with
  | Some s -> s :: i.Instr.deps
  | None -> i.Instr.deps

(* Kahn topological traversal over live instructions; returns order or
   raises if a cycle exists. *)
let topo_order t =
  let n = Array.length t.instrs in
  let indeg = Array.make n 0 in
  let alive id = t.instrs.(id).Instr.alive in
  Array.iter
    (fun (i : Instr.t) ->
      if i.Instr.alive then
        indeg.(i.Instr.id) <- List.length (preds_of i))
    t.instrs;
  let succ = successors t in
  let queue = Queue.create () in
  Array.iter
    (fun (i : Instr.t) ->
      if i.Instr.alive && indeg.(i.Instr.id) = 0 then
        Queue.add i.Instr.id queue)
    t.instrs;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr seen;
    List.iter
      (fun s ->
        if alive s then begin
          indeg.(s) <- indeg.(s) - 1;
          if indeg.(s) = 0 then Queue.add s queue
        end)
      succ.(id)
  done;
  if !seen <> num_live t then
    invalid_arg "Instr_dag: dependency cycle detected";
  List.rev !order

let depths t =
  let n = Array.length t.instrs in
  let depth = Array.make n 0 and rdepth = Array.make n 0 in
  let order = topo_order t in
  List.iter
    (fun id ->
      let i = t.instrs.(id) in
      List.iter
        (fun p -> if depth.(id) < depth.(p) + 1 then depth.(id) <- depth.(p) + 1)
        (preds_of i))
    order;
  List.iter
    (fun id ->
      let i = t.instrs.(id) in
      List.iter
        (fun p ->
          if rdepth.(p) < rdepth.(id) + 1 then rdepth.(p) <- rdepth.(id) + 1)
        (preds_of i))
    (List.rev order);
  (depth, rdepth)

let compact t =
  let remap = Array.make (Array.length t.instrs) (-1) in
  let live_list = live t in
  List.iteri (fun fresh i -> remap.(i.Instr.id) <- fresh) live_list;
  let map_id d =
    if remap.(d) < 0 then invalid_arg "Instr_dag.compact: dep on dead instr"
    else remap.(d)
  in
  let instrs =
    List.mapi
      (fun fresh (i : Instr.t) ->
        {
          i with
          Instr.id = fresh;
          deps = List.sort Int.compare (List.map map_id i.Instr.deps);
          comm_pred = Option.map map_id i.Instr.comm_pred;
        })
      live_list
  in
  { t with instrs = Array.of_list instrs }

let validate t =
  let n = Array.length t.instrs in
  Array.iteri
    (fun idx (i : Instr.t) ->
      if i.Instr.id <> idx then invalid_arg "Instr_dag: id mismatch";
      if i.Instr.alive then begin
        List.iter
          (fun d ->
            if d < 0 || d >= n then invalid_arg "Instr_dag: dep out of range";
            let p = t.instrs.(d) in
            if not p.Instr.alive then invalid_arg "Instr_dag: dep on dead";
            if p.Instr.rank <> i.Instr.rank then
              invalid_arg "Instr_dag: cross-rank processing dep")
          i.Instr.deps;
        (match i.Instr.comm_pred with
        | Some s ->
            if not (Instr.receives i.Instr.op) then
              invalid_arg "Instr_dag: comm_pred on non-receiving instr";
            let p = t.instrs.(s) in
            if not (Instr.sends p.Instr.op) then
              invalid_arg "Instr_dag: comm_pred not a send";
            if p.Instr.send_peer <> Some i.Instr.rank then
              invalid_arg "Instr_dag: send peer mismatch";
            if i.Instr.recv_peer <> Some p.Instr.rank then
              invalid_arg "Instr_dag: recv peer mismatch"
        | None ->
            if Instr.receives i.Instr.op then
              invalid_arg "Instr_dag: receiving instr without comm_pred");
        if Instr.sends i.Instr.op && i.Instr.send_peer = None then
          invalid_arg "Instr_dag: sending instr without peer"
      end)
    t.instrs;
  ignore (topo_order t)

let pp fmt t =
  Format.fprintf fmt "@[<v>instr-dag %s, %d live instr(s)@," t.name
    (num_live t);
  Array.iter
    (fun i ->
      if i.Instr.alive then Format.fprintf fmt "  %a@," Instr.pp i)
    t.instrs;
  Format.fprintf fmt "@]"
