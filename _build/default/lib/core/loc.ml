type t = {
  rank : int;
  buf : Buffer_id.t;
  index : int;
  count : int;
}

let make ~rank ~buf ~index ~count =
  if rank < 0 then invalid_arg "Loc.make: negative rank";
  if index < 0 then invalid_arg "Loc.make: negative index";
  if count <= 0 then invalid_arg "Loc.make: nonpositive count";
  { rank; buf; index; count }

let same_place a b =
  a.rank = b.rank && Buffer_id.equal a.buf b.buf && a.index = b.index

let equal a b = same_place a b && a.count = b.count

let overlaps a b =
  a.rank = b.rank && Buffer_id.equal a.buf b.buf
  && a.index < b.index + b.count
  && b.index < a.index + a.count

let indices t = List.init t.count (fun i -> t.index + i)

let pp fmt t =
  if t.count = 1 then
    Format.fprintf fmt "%d:%s[%d]" t.rank (Buffer_id.name t.buf) t.index
  else
    Format.fprintf fmt "%d:%s[%d..%d]" t.rank (Buffer_id.name t.buf) t.index
      (t.index + t.count - 1)
