type t =
  | Input
  | Output
  | Scratch

let all = [ Input; Output; Scratch ]

let name = function
  | Input -> "i"
  | Output -> "o"
  | Scratch -> "s"

let long_name = function
  | Input -> "input"
  | Output -> "output"
  | Scratch -> "scratch"

let of_name s =
  match String.lowercase_ascii s with
  | "i" | "in" | "input" -> Some Input
  | "o" | "out" | "output" -> Some Output
  | "s" | "sc" | "scratch" -> Some Scratch
  | _ -> None

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let pp fmt t = Format.pp_print_string fmt (long_name t)
