type event = {
  name : string;
  cat : string;
  pid : int;
  tid : int;
  ts : float;
  dur : float;
}

type t = { mutable events : event list; mutable count : int }

let create () = { events = []; count = 0 }

let add t ~name ~cat ~pid ~tid ~ts ~dur =
  t.events <- { name; cat; pid; tid; ts; dur } :: t.events;
  t.count <- t.count + 1

let num_events t = t.count

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b " "
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json t =
  let b = Buffer.create (256 * t.count) in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\
            \"ts\":%.3f,\"dur\":%.3f}"
           (escape e.name) (escape e.cat) e.pid e.tid (e.ts *. 1e6)
           (e.dur *. 1e6)))
    (List.rev t.events);
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))
