type tree = {
  tag : string;
  attrs : (string * string) list;
  children : tree list;
}

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Generic XML subset                                                  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&apos;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec print_tree fmt t =
  Format.fprintf fmt "@[<v 2><%s" t.tag;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=\"%s\"" k (escape v)) t.attrs;
  match t.children with
  | [] -> Format.fprintf fmt "/>@]"
  | cs ->
      Format.fprintf fmt ">";
      List.iter (fun c -> Format.fprintf fmt "@,%a" print_tree c) cs;
      Format.fprintf fmt "@]@,</%s>" t.tag

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.src && String.sub c.src c.pos n = s

let expect c s =
  if looking_at c s then c.pos <- c.pos + String.length s
  else fail "expected %S at offset %d" s c.pos

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = ':' || ch = '.'

let rec skip_ws_and_comments c =
  (match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws_and_comments c
  | Some _ | None -> ());
  if looking_at c "<!--" then begin
    c.pos <- c.pos + 4;
    let rec close () =
      if c.pos >= String.length c.src then fail "unterminated comment"
      else if looking_at c "-->" then c.pos <- c.pos + 3
      else begin
        advance c;
        close ()
      end
    in
    close ();
    skip_ws_and_comments c
  end

let read_name c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ch when is_name_char ch ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  if c.pos = start then fail "expected a name at offset %d" c.pos;
  String.sub c.src start (c.pos - start)

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '&' then begin
        let rest = String.sub s i (min 6 (n - i)) in
        let entity, len =
          if String.length rest >= 5 && String.sub rest 0 5 = "&amp;" then
            ("&", 5)
          else if String.length rest >= 4 && String.sub rest 0 4 = "&lt;" then
            ("<", 4)
          else if String.length rest >= 4 && String.sub rest 0 4 = "&gt;" then
            (">", 4)
          else if String.length rest >= 6 && String.sub rest 0 6 = "&quot;"
          then ("\"", 6)
          else if String.length rest >= 6 && String.sub rest 0 6 = "&apos;"
          then ("'", 6)
          else fail "unknown entity at offset %d" i
        in
        Buffer.add_string b entity;
        go (i + len)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let read_attr_value c =
  expect c "\"";
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some '"' -> ()
    | Some _ ->
        advance c;
        go ()
    | None -> fail "unterminated attribute value"
  in
  go ();
  let raw = String.sub c.src start (c.pos - start) in
  advance c;
  unescape raw

let rec parse_element c =
  skip_ws_and_comments c;
  expect c "<";
  let tag = read_name c in
  let rec attrs acc =
    skip_ws_and_comments c;
    match peek c with
    | Some '/' | Some '>' -> List.rev acc
    | Some _ ->
        let k = read_name c in
        skip_ws_and_comments c;
        expect c "=";
        skip_ws_and_comments c;
        let v = read_attr_value c in
        attrs ((k, v) :: acc)
    | None -> fail "unterminated element <%s>" tag
  in
  let attrs = attrs [] in
  skip_ws_and_comments c;
  if looking_at c "/>" then begin
    c.pos <- c.pos + 2;
    { tag; attrs; children = [] }
  end
  else begin
    expect c ">";
    let rec children acc =
      skip_ws_and_comments c;
      if looking_at c "</" then begin
        c.pos <- c.pos + 2;
        let close = read_name c in
        if close <> tag then fail "mismatched </%s> for <%s>" close tag;
        skip_ws_and_comments c;
        expect c ">";
        List.rev acc
      end
      else children (parse_element c :: acc)
    in
    { tag; attrs; children = children [] }
  end

let parse_tree s =
  let c = { src = s; pos = 0 } in
  skip_ws_and_comments c;
  if looking_at c "<?" then begin
    let rec close () =
      if c.pos >= String.length c.src then fail "unterminated declaration"
      else if looking_at c "?>" then c.pos <- c.pos + 2
      else begin
        advance c;
        close ()
      end
    in
    close ()
  end;
  let t = parse_element c in
  skip_ws_and_comments c;
  t

(* ------------------------------------------------------------------ *)
(* IR <-> tree                                                         *)
(* ------------------------------------------------------------------ *)

let attr t k =
  match List.assoc_opt k t.attrs with
  | Some v -> v
  | None -> fail "<%s> missing attribute %s" t.tag k

let int_attr t k =
  match int_of_string_opt (attr t k) with
  | Some v -> v
  | None -> fail "<%s> attribute %s is not an integer" t.tag k

let ids_attr prefix ids =
  (prefix, String.concat "," (List.map string_of_int ids))

let loc_attrs prefix = function
  | None -> [ (prefix ^ "buf", "n"); (prefix ^ "off", "-1") ]
  | Some (l : Loc.t) ->
      [
        (prefix ^ "buf", Buffer_id.name l.Loc.buf);
        (prefix ^ "off", string_of_int l.Loc.index);
      ]

let step_to_tree (st : Ir.step) =
  let depid, deps =
    match st.Ir.depends with
    | [] -> ([ -1 ], [ -1 ])
    | ds -> (List.map fst ds, List.map snd ds)
  in
  {
    tag = "step";
    attrs =
      [ ("s", string_of_int st.Ir.s); ("type", Instr.opcode_name st.Ir.op) ]
      @ loc_attrs "src" st.Ir.src @ loc_attrs "dst" st.Ir.dst
      @ [
          ("cnt", string_of_int st.Ir.count);
          ids_attr "depid" depid;
          ids_attr "deps" deps;
          ("hasdep", if st.Ir.has_dep then "1" else "0");
        ];
    children = [];
  }

let tb_to_tree (tb : Ir.tb) =
  {
    tag = "tb";
    attrs =
      [
        ("id", string_of_int tb.Ir.tb_id);
        ("send", string_of_int tb.Ir.send);
        ("recv", string_of_int tb.Ir.recv);
        ("chan", string_of_int tb.Ir.chan);
      ];
    children = Array.to_list (Array.map step_to_tree tb.Ir.steps);
  }

let gpu_to_tree (g : Ir.gpu) =
  {
    tag = "gpu";
    attrs =
      [
        ("id", string_of_int g.Ir.gpu_id);
        ("i_chunks", string_of_int g.Ir.input_chunks);
        ("o_chunks", string_of_int g.Ir.output_chunks);
        ("s_chunks", string_of_int g.Ir.scratch_chunks);
      ];
    children = Array.to_list (Array.map tb_to_tree g.Ir.tbs);
  }

let to_tree (ir : Ir.t) =
  let coll = ir.Ir.collective in
  let coll_attrs =
    match coll.Collective.kind with
    | Collective.Broadcast r | Collective.Reduce r | Collective.Gather r
    | Collective.Scatter r ->
        [ ("coll", Collective.name coll); ("root", string_of_int r) ]
    | Collective.Custom c ->
        [
          ("coll", "custom");
          ("cname", c.Collective.custom_name);
          ("in_chunks", string_of_int c.Collective.input_chunks);
          ("out_chunks", string_of_int c.Collective.output_chunks);
        ]
    | Collective.Allreduce | Collective.Allgather | Collective.Reduce_scatter
    | Collective.Alltoall | Collective.Alltonext ->
        [ ("coll", Collective.name coll) ]
  in
  {
    tag = "algo";
    attrs =
      [
        ("name", ir.Ir.name);
        ("proto", Msccl_topology.Protocol.name ir.Ir.proto);
        ("nranks", string_of_int coll.Collective.num_ranks);
        ("chunk_factor", string_of_int coll.Collective.chunk_factor);
        ("inplace", if coll.Collective.inplace then "1" else "0");
      ]
      @ coll_attrs;
    children = Array.to_list (Array.map gpu_to_tree ir.Ir.gpus);
  }

let ids_of_attr t k =
  attr t k |> String.split_on_char ','
  |> List.map (fun s ->
         match int_of_string_opt (String.trim s) with
         | Some v -> v
         | None -> fail "<%s> attribute %s: bad id list" t.tag k)

let loc_of_attrs t prefix ~rank ~count =
  match attr t (prefix ^ "buf") with
  | "n" -> None
  | b -> (
      match Buffer_id.of_name b with
      | None -> fail "<%s> unknown buffer %S" t.tag b
      | Some buf ->
          Some (Loc.make ~rank ~buf ~index:(int_attr t (prefix ^ "off")) ~count))

let step_of_tree ~rank t =
  if t.tag <> "step" then fail "expected <step>, got <%s>" t.tag;
  let op =
    match Instr.opcode_of_name (attr t "type") with
    | Some op -> op
    | None -> fail "unknown opcode %S" (attr t "type")
  in
  let count = int_attr t "cnt" in
  let depends =
    match (ids_of_attr t "depid", ids_of_attr t "deps") with
    | [ -1 ], [ -1 ] -> []
    | tbs, steps when List.length tbs = List.length steps ->
        List.combine tbs steps
    | _ -> fail "<step> depid/deps length mismatch"
  in
  {
    Ir.s = int_attr t "s";
    op;
    src = loc_of_attrs t "src" ~rank ~count;
    dst = loc_of_attrs t "dst" ~rank ~count;
    count;
    depends;
    has_dep = attr t "hasdep" = "1";
  }

let tb_of_tree ~rank t =
  if t.tag <> "tb" then fail "expected <tb>, got <%s>" t.tag;
  {
    Ir.tb_id = int_attr t "id";
    send = int_attr t "send";
    recv = int_attr t "recv";
    chan = int_attr t "chan";
    steps = Array.of_list (List.map (step_of_tree ~rank) t.children);
  }

let gpu_of_tree t =
  if t.tag <> "gpu" then fail "expected <gpu>, got <%s>" t.tag;
  let rank = int_attr t "id" in
  {
    Ir.gpu_id = rank;
    input_chunks = int_attr t "i_chunks";
    output_chunks = int_attr t "o_chunks";
    scratch_chunks = int_attr t "s_chunks";
    tbs = Array.of_list (List.map (tb_of_tree ~rank) t.children);
  }

let of_tree t =
  if t.tag <> "algo" then fail "expected <algo>, got <%s>" t.tag;
  let num_ranks = int_attr t "nranks" in
  let chunk_factor = int_attr t "chunk_factor" in
  let inplace = attr t "inplace" = "1" in
  let kind =
    match attr t "coll" with
    | "custom" ->
        Collective.Custom
          {
            Collective.custom_name = attr t "cname";
            input_chunks = int_attr t "in_chunks";
            output_chunks = int_attr t "out_chunks";
            expected = (fun ~rank:_ ~index:_ -> None);
            initial = None;
          }
    | name -> (
        match Collective.kind_of_name name with
        | None -> fail "unknown collective %S" name
        | Some k -> (
            let root () = int_attr t "root" in
            match k with
            | Collective.Broadcast _ -> Collective.Broadcast (root ())
            | Collective.Reduce _ -> Collective.Reduce (root ())
            | Collective.Gather _ -> Collective.Gather (root ())
            | Collective.Scatter _ -> Collective.Scatter (root ())
            | Collective.Allreduce | Collective.Allgather
            | Collective.Reduce_scatter | Collective.Alltoall
            | Collective.Alltonext | Collective.Custom _ ->
                k))
  in
  let chunk_factor =
    match kind with Collective.Custom _ -> 1 | _ -> chunk_factor
  in
  let proto =
    match Msccl_topology.Protocol.of_string (attr t "proto") with
    | Some p -> p
    | None -> fail "unknown protocol %S" (attr t "proto")
  in
  let ir =
    {
      Ir.name = attr t "name";
      collective = Collective.make kind ~num_ranks ~chunk_factor ~inplace ();
      proto;
      gpus = Array.of_list (List.map gpu_of_tree t.children);
    }
  in
  Ir.validate ir;
  ir

let to_string ir =
  Format.asprintf "<?xml version=\"1.0\"?>@.%a@." print_tree (to_tree ir)

let of_string s = of_tree (parse_tree s)

let save ir path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ir))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
