lib/core/verify.ml: Array Chunk Collective Executor Format Hashtbl Instr Ir List Msccl_topology Option Printf Queue
