lib/core/schedule.mli: Instr_dag Ir Msccl_topology
