lib/core/timeline.ml: Buffer Char Fun List Printf String
