lib/core/instr_dag.mli: Chunk_dag Collective Format Instr
