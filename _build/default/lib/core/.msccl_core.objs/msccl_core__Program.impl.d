lib/core/program.ml: Array Buffer_id Chunk Chunk_dag Collective Format Hashtbl Int List Loc
