lib/core/executor.ml: Array Buffer Buffer_id Chunk Collective Format Hashtbl Instr Ir List Loc Msccl_topology Option Printf Queue
