lib/core/chunk_dag.mli: Collective Format Loc
