lib/core/executor.mli: Chunk Ir
