lib/core/compile.ml: Chunk_dag Format Fusion Instances Instr_dag Ir Program Schedule Verify
