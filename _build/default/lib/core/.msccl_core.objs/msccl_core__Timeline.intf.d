lib/core/timeline.mli:
