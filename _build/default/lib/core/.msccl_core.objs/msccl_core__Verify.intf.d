lib/core/verify.mli: Chunk Format Ir
