lib/core/chunk_dag.ml: Array Buffer_id Collective Format List Loc Printf String
