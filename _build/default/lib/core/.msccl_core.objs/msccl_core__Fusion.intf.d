lib/core/fusion.mli: Format Instr_dag
