lib/core/buffer_id.ml: Format Stdlib String
