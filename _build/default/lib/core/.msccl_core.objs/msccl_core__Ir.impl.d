lib/core/ir.ml: Array Buffer_id Collective Format Hashtbl Instr List Loc Msccl_topology Option Printf String
