lib/core/analysis.ml: Array Format Hashtbl Instr Int Ir List Option Queue
