lib/core/xml.mli: Format Ir
