lib/core/loc.ml: Buffer_id Format List
