lib/core/instances.mli: Ir
