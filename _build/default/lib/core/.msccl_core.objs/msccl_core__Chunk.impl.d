lib/core/chunk.ml: Format Hashtbl Int List Stdlib
