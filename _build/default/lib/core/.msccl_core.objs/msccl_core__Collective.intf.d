lib/core/collective.mli: Chunk Format
