lib/core/instr.mli: Format Loc
