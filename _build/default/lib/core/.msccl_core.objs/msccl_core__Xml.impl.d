lib/core/xml.ml: Array Buffer Buffer_id Collective Format Fun Instr Ir List Loc Msccl_topology String
