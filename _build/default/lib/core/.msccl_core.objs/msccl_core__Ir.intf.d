lib/core/ir.mli: Collective Format Instr Loc Msccl_topology
