lib/core/analysis.mli: Format Ir
