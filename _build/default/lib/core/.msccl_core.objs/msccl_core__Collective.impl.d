lib/core/collective.ml: Chunk Format List String
