lib/core/compile.mli: Chunk_dag Collective Format Fusion Ir Msccl_topology Program
