lib/core/simulator.ml: Array Buffer Collective Format Hashtbl Instr Ir List Msccl_sim Msccl_topology Printf Queue Timeline
