lib/core/buffer_id.mli: Format
