lib/core/program.mli: Buffer_id Chunk_dag Collective
