lib/core/simulator.mli: Ir Msccl_topology Timeline
