lib/core/loc.mli: Buffer_id Format
