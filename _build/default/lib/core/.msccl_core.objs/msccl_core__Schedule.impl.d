lib/core/schedule.ml: Array Collective Format Hashtbl Instr Instr_dag Ir List Msccl_sim Msccl_topology Option Queue Union_find
