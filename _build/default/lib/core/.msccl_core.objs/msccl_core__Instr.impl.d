lib/core/instr.ml: Format List Loc Printf String
