lib/core/fusion.ml: Array Format Instr Instr_dag Int List Loc Option
