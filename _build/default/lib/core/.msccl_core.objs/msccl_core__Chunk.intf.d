lib/core/chunk.mli: Format
