lib/core/instr_dag.ml: Array Buffer_id Chunk_dag Collective Format Hashtbl Instr Int List Loc Option Queue
