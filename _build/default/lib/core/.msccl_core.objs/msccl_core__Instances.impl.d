lib/core/instances.ml: Array Buffer_id Chunk Collective Format Ir List Loc Option Printf
