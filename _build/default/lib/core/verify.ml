type mismatch = {
  m_rank : int;
  m_index : int;
  m_expected : Chunk.t;
  m_actual : Chunk.t option;
}

let pp_mismatch fmt m =
  Format.fprintf fmt "rank %d output[%d]: expected %a, got %a" m.m_rank
    m.m_index Chunk.pp m.m_expected
    (fun fmt -> function
      | None -> Format.pp_print_string fmt "uninitialized"
      | Some c -> Chunk.pp fmt c)
    m.m_actual

let check_postcondition (ir : Ir.t) =
  let st = Executor.Symbolic.run_collective ir in
  let coll = ir.Ir.collective in
  let out_size = Collective.output_buffer_size coll in
  let mismatches = ref [] in
  for rank = Ir.num_ranks ir - 1 downto 0 do
    let out = Executor.Symbolic.output st ~rank in
    for index = out_size - 1 downto 0 do
      match Collective.postcondition coll ~rank ~index with
      | None -> ()
      | Some expected -> (
          match out.(index) with
          | Some actual when Chunk.equal actual expected -> ()
          | actual ->
              mismatches :=
                { m_rank = rank; m_index = index; m_expected = expected;
                  m_actual = actual }
                :: !mismatches)
    done
  done;
  match !mismatches with [] -> Ok () | ms -> Error ms

(* ------------------------------------------------------------------ *)
(* Static deadlock-freedom                                             *)
(* ------------------------------------------------------------------ *)

(* Global step node ids: dense numbering over (gpu, tb, step). *)
let check_deadlock_free ?slots (ir : Ir.t) =
  let slots =
    match slots with
    | Some s -> s
    | None -> Msccl_topology.Protocol.num_slots ir.Ir.proto
  in
  (* Assign node ids. *)
  let base = Hashtbl.create 64 in
  let total = ref 0 in
  Array.iter
    (fun (g : Ir.gpu) ->
      Array.iter
        (fun (tb : Ir.tb) ->
          Hashtbl.add base (g.Ir.gpu_id, tb.Ir.tb_id) !total;
          total := !total + Array.length tb.Ir.steps)
        g.Ir.tbs)
    ir.Ir.gpus;
  let n = !total in
  let node gpu tb step = Hashtbl.find base (gpu, tb) + step in
  let adj = Array.make n [] in
  let edge a b = adj.(a) <- b :: adj.(a) in
  (* Per-connection ordered send and receive node lists. *)
  let sends = Hashtbl.create 32 and recvs = Hashtbl.create 32 in
  let push tbl key v =
    Hashtbl.replace tbl key (v :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  Array.iter
    (fun (g : Ir.gpu) ->
      Array.iter
        (fun (tb : Ir.tb) ->
          Array.iteri
            (fun si (st : Ir.step) ->
              let me = node g.Ir.gpu_id tb.Ir.tb_id si in
              if si > 0 then edge (node g.Ir.gpu_id tb.Ir.tb_id (si - 1)) me;
              List.iter
                (fun (dtb, dstep) -> edge (node g.Ir.gpu_id dtb dstep) me)
                st.Ir.depends;
              if Instr.sends st.Ir.op then
                push sends (g.Ir.gpu_id, tb.Ir.send, tb.Ir.chan) me;
              if Instr.receives st.Ir.op then
                push recvs (tb.Ir.recv, g.Ir.gpu_id, tb.Ir.chan) me)
            tb.Ir.steps)
        g.Ir.tbs)
    ir.Ir.gpus;
  let fifo_problem = ref None in
  Hashtbl.iter
    (fun key send_nodes ->
      let send_nodes = Array.of_list (List.rev send_nodes) in
      let recv_nodes =
        Array.of_list (List.rev (Option.value ~default:[] (Hashtbl.find_opt recvs key)))
      in
      if Array.length send_nodes <> Array.length recv_nodes then begin
        let s, d, c = key in
        fifo_problem :=
          Some
            (Printf.sprintf "connection %d->%d ch%d: %d sends vs %d receives"
               s d c (Array.length send_nodes) (Array.length recv_nodes))
      end
      else
        Array.iteri
          (fun k s ->
            (* Data delivery: k-th send before k-th receive. *)
            edge s recv_nodes.(k);
            (* FIFO back-pressure: send k needs slot freed by recv k-s. *)
            if k >= slots then edge recv_nodes.(k - slots) s)
          send_nodes)
    sends;
  match !fifo_problem with
  | Some msg -> Error msg
  | None ->
      (* Kahn's algorithm. *)
      let indeg = Array.make n 0 in
      Array.iter (List.iter (fun b -> indeg.(b) <- indeg.(b) + 1)) adj;
      let q = Queue.create () in
      Array.iteri (fun i d -> if d = 0 then Queue.add i q) indeg;
      let seen = ref 0 in
      while not (Queue.is_empty q) do
        let i = Queue.pop q in
        incr seen;
        List.iter
          (fun b ->
            indeg.(b) <- indeg.(b) - 1;
            if indeg.(b) = 0 then Queue.add b q)
          adj.(i)
      done;
      if !seen = n then Ok ()
      else
        Error
          (Printf.sprintf
             "dependency cycle through %d step(s) (with %d FIFO slots)"
             (n - !seen) slots)

let check (ir : Ir.t) =
  match Ir.validate ir with
  | () -> (
      match check_deadlock_free ir with
      | Error msg -> Error ("deadlock check failed: " ^ msg)
      | Ok () -> (
          match check_postcondition ir with
          | Ok () -> Ok ()
          | Error (m :: _ as ms) ->
              Error
                (Format.asprintf "postcondition failed at %d position(s); first: %a"
                   (List.length ms) pp_mismatch m)
          | Error [] -> assert false
          | exception Executor.Exec_error msg ->
              Error ("symbolic execution failed: " ^ msg)))
  | exception Invalid_argument msg -> Error ("structural check failed: " ^ msg)

let check_exn ir =
  match check ir with Ok () -> () | Error msg -> failwith msg
