(** Whole-program parallelization: the [r] parameter of the paper's
    evaluation ("r specifies the parallelization factor of the whole
    program", Fig. 8).

    Replication creates [r] independent instances of a compiled program,
    each operating on a [1/r] slice of every buffer on its own disjoint set
    of channels, so the instances' thread blocks run fully in parallel.
    Chunk parallelization (paper §5.1) exists because one thread block
    cannot saturate a fast link; replication is how NCCL itself scales a
    logical ring across 24 channels (§7.1.1).

    Two slice layouts are provided:

    - {!blocked}: instance [k] owns the contiguous region
      [k * size .. (k+1) * size - 1] of each buffer. Aggregated
      (multi-count) operations stay aggregated. The resulting collective is
      a [Custom] wrapper whose pre/postconditions relabel each instance's
      chunks, so verification still works.
    - {!interleaved}: chunk [i] of instance [k] is global chunk
      [i * r + k], matching msccl-tools' interleaved instance policy; the
      result is the {e same} built-in collective with [chunk_factor * r].
      Only valid for programs whose operations all have [count = 1]
      (slices of an aggregated transfer would not be contiguous). *)

exception Replication_error of string

val blocked : Ir.t -> instances:int -> Ir.t
(** Raises {!Replication_error} when [instances < 1]. [instances = 1]
    returns the IR unchanged. *)

val interleaved : Ir.t -> instances:int -> Ir.t
(** Raises {!Replication_error} on multi-count steps or custom
    collectives. *)
