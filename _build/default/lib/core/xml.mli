(** MSCCL-IR XML serialization.

    The on-disk format follows the spirit of msccl's algorithm XML files:
    an [<algo>] root with per-GPU [<gpu>] elements containing [<tb>] thread
    blocks and [<step>] instructions. Writing then parsing an IR yields a
    structurally identical IR, with one caveat: a [Custom] collective's
    postcondition is a function and cannot round-trip, so parsed custom
    collectives get a vacuous postcondition (shape-only) — built-in
    collectives round-trip exactly.

    A small generic XML subset (elements, attributes, comments, no text
    nodes) is exposed for reuse and testing. *)

type tree = {
  tag : string;
  attrs : (string * string) list;
  children : tree list;
}

exception Parse_error of string

val parse_tree : string -> tree
(** Parses one element (after an optional declaration and comments).
    Raises {!Parse_error} with position information. *)

val print_tree : Format.formatter -> tree -> unit
(** Pretty-prints with 2-space indentation and escaped attributes. *)

val to_tree : Ir.t -> tree

val of_tree : tree -> Ir.t
(** Raises {!Parse_error} on missing/ill-typed attributes; the result is
    validated with {!Ir.validate}. *)

val to_string : Ir.t -> string

val of_string : string -> Ir.t

val save : Ir.t -> string -> unit
(** [save ir path] writes the XML file. *)

val load : string -> Ir.t
