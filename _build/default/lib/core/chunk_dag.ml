type op =
  | Copy_op
  | Reduce_op

type node = {
  id : int;
  op : op;
  src : Loc.t;
  dst : Loc.t;
  ch : int option;
  deps : int list;
}

type t = {
  name : string;
  collective : Collective.t;
  nodes : node array;
  scratch_sizes : int array;
}

let num_nodes t = Array.length t.nodes

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg "Chunk_dag.node: id out of range";
  t.nodes.(id)

let iter t f = Array.iter f t.nodes

let is_remote n = n.src.Loc.rank <> n.dst.Loc.rank

let buffer_size t ~rank ~buf =
  match buf with
  | Buffer_id.Input -> Collective.input_buffer_size t.collective
  | Buffer_id.Output -> Collective.output_buffer_size t.collective
  | Buffer_id.Scratch -> t.scratch_sizes.(rank)

let check_loc t (l : Loc.t) =
  let ranks = t.collective.Collective.num_ranks in
  if l.Loc.rank < 0 || l.Loc.rank >= ranks then
    invalid_arg "Chunk_dag: rank out of range";
  let size = buffer_size t ~rank:l.Loc.rank ~buf:l.Loc.buf in
  if l.Loc.index + l.Loc.count > size then
    invalid_arg "Chunk_dag: location exceeds buffer"

let validate t =
  Array.iteri
    (fun i n ->
      if n.id <> i then invalid_arg "Chunk_dag: non-dense ids";
      if n.src.Loc.count <> n.dst.Loc.count then
        invalid_arg "Chunk_dag: count mismatch";
      check_loc t n.src;
      check_loc t n.dst;
      List.iter
        (fun d ->
          if d < 0 || d >= i then invalid_arg "Chunk_dag: bad dependency")
        n.deps)
    t.nodes

let pp_op fmt = function
  | Copy_op -> Format.pp_print_string fmt "copy"
  | Reduce_op -> Format.pp_print_string fmt "reduce"

let pp fmt t =
  Format.fprintf fmt "@[<v>chunk-dag %s (%a), %d node(s)@," t.name
    Collective.pp t.collective (num_nodes t);
  Array.iter
    (fun n ->
      Format.fprintf fmt "  %3d: %a %a -> %a%s deps=[%s]@," n.id pp_op n.op
        Loc.pp n.src Loc.pp n.dst
        (match n.ch with
        | None -> ""
        | Some c -> Printf.sprintf " ch=%d" c)
        (String.concat "," (List.map string_of_int n.deps)))
    t.nodes;
  Format.fprintf fmt "@]"
