(** Timing simulation of MSCCL-IR on a cluster topology.

    Models the MSCCLang runtime interpreter of paper §6/Fig. 5 on top of
    the fluid-flow discrete-event engine:

    - every thread block runs its instruction list sequentially, once per
      {e tile} (the pipelining loop: chunks larger than a protocol FIFO slot
      are split into tiles, and thread blocks stream tiles through the
      whole program — Fig. 6);
    - a send waits for a free FIFO slot (at most [slots] outstanding sends
      per connection), pays the protocol-scaled per-message α, then drives
      the transfer across the route's shared resources, capped by the
      per-thread-block bandwidth limit; InfiniBand sends are staged (the
      thread block copies into the proxy buffer and continues while the
      NIC transfers — GPUDirect RDMA with a CPU helper thread, §6.1);
    - a receive waits for arrival, then copies out of the slot (freeing
      it), plus the γ reduction cost for the rrc/rrs/rrcs family;
    - cross thread-block dependencies wait on semaphores;
    - the cooperative kernel launch costs a fixed overhead plus a per-
      thread-block term, and requires at most [Topology.sm_count] thread
      blocks per GPU.

    The simulated clock advances only through these costs, so two IRs
    compared on the same topology give meaningful speedup ratios. *)

exception Sim_error of string

type result = {
  time : float;  (** End-to-end completion time in seconds (incl. launch). *)
  kernel_time : float;  (** Time after the launch overhead. *)
  tiles : int;  (** Pipelining factor used. *)
  messages : int;  (** Point-to-point messages transferred. *)
  wire_bytes : float;  (** Total bytes on the wire (incl. protocol overhead). *)
  events : int;  (** Engine events processed (determinism metric). *)
}

val run :
  topo:Msccl_topology.Topology.t ->
  chunk_bytes:float ->
  ?max_tiles:int ->
  ?check_occupancy:bool ->
  ?timeline:Timeline.t ->
  Ir.t ->
  result
(** Simulates one kernel. [chunk_bytes] is the payload size of one chunk;
    the collective's buffer size is [chunk_bytes * chunks]. [max_tiles]
    (default 4) caps the pipelining factor to bound simulation cost for
    huge buffers. [check_occupancy] (default true) fails when a GPU needs
    more thread blocks than it has SMs. [timeline] records instruction and
    transfer spans for Chrome-tracing export. Raises {!Sim_error} on
    topology / IR rank mismatch, occupancy violation, or (for hand-written
    IR) deadlock. *)

val run_buffer :
  topo:Msccl_topology.Topology.t ->
  buffer_bytes:float ->
  ?max_tiles:int ->
  ?check_occupancy:bool ->
  ?timeline:Timeline.t ->
  Ir.t ->
  result
(** Like {!run} but takes the total size of the collective input buffer and
    divides it by the IR's input chunk count. *)

val algbw : buffer_bytes:float -> result -> float
(** Algorithm bandwidth in bytes/second: buffer size divided by time (the
    usual nccl-tests metric). *)
