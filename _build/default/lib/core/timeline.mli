(** Execution timelines captured from the simulator.

    Pass a timeline to {!Simulator.run} to record every instruction's
    execution span (per thread block, per tile) and every point-to-point
    transfer. Export as Chrome tracing JSON — load the file in
    [chrome://tracing] or Perfetto to see exactly the kind of
    link/thread-block utilization picture the paper draws by hand in
    Fig. 6. GPUs map to processes and thread blocks to threads; transfers
    appear on a per-connection pseudo-thread. Timestamps are microseconds
    of simulated time. *)

type t

val create : unit -> t

val add :
  t ->
  name:string ->
  cat:string ->
  pid:int ->
  tid:int ->
  ts:float ->
  dur:float ->
  unit
(** [ts] and [dur] in seconds (converted to µs on export). *)

val num_events : t -> int

val to_chrome_json : t -> string
(** The Chrome tracing "traceEvents" JSON document. *)

val save : t -> string -> unit
