(** A span of [count] contiguous chunks in one buffer of one rank. *)

type t = {
  rank : int;
  buf : Buffer_id.t;
  index : int;
  count : int;
}

val make : rank:int -> buf:Buffer_id.t -> index:int -> count:int -> t
(** Raises [Invalid_argument] on negative index/rank or nonpositive count. *)

val same_place : t -> t -> bool
(** Same rank, buffer and index (count may differ). *)

val equal : t -> t -> bool

val overlaps : t -> t -> bool
(** True when the two spans are on the same rank and buffer and their index
    ranges intersect. Buffer aliasing (in-place input/output) is resolved by
    callers before asking. *)

val indices : t -> int list
(** The chunk indices covered, [index .. index+count-1]. *)

val pp : Format.formatter -> t -> unit
