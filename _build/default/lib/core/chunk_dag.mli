(** The Chunk DAG produced by tracing a MSCCLang program (paper §4.1).

    Nodes are the program's copy and reduce operations; edges are the
    dependencies that arise from chunk movement (true dependencies) and
    from reusing buffer indices (false/anti dependencies). Node ids are the
    sequential trace order, so id order is always a valid topological
    order. *)

type op =
  | Copy_op  (** [dst := src] *)
  | Reduce_op  (** [dst := dst ⊕ src] (in-place point-wise reduction) *)

type node = {
  id : int;
  op : op;
  src : Loc.t;
  dst : Loc.t;
  ch : int option;  (** User channel directive on the chunk operation. *)
  deps : int list;  (** Ids of nodes that must execute before this one. *)
}

type t = {
  name : string;
  collective : Collective.t;
  nodes : node array;  (** Indexed by id. *)
  scratch_sizes : int array;  (** Per-rank scratch buffer size in chunks. *)
}

val num_nodes : t -> int

val node : t -> int -> node

val iter : t -> (node -> unit) -> unit

val is_remote : node -> bool
(** True when the operation crosses ranks (src rank <> dst rank). *)

val validate : t -> unit
(** Checks ids are dense, deps point backwards, and locations are in range
    for the collective's buffers. Raises [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit
(** Multi-line dump for debugging and golden tests. *)
