exception Replication_error of string

let error fmt = Format.kasprintf (fun s -> raise (Replication_error s)) fmt

(* Relabel every input chunk id (q, idx) of a chunk value. *)
let remap_chunk f c =
  match Chunk.inputs c with
  | None -> Chunk.uninit
  | Some ids ->
      Chunk.reduce_many
        (List.map (fun (q, idx) -> let q', i' = f q idx in
                    Chunk.input ~rank:q' ~index:i') ids)

let buffer_size (g : Ir.gpu) = function
  | Buffer_id.Input -> g.Ir.input_chunks
  | Buffer_id.Output -> g.Ir.output_chunks
  | Buffer_id.Scratch -> g.Ir.scratch_chunks

(* Shared step/tb replication machinery. [map_loc] relocates a location for
   instance [k]. *)
let replicate_gpus (ir : Ir.t) ~instances ~map_loc =
  Array.map
    (fun (g : Ir.gpu) ->
      let old_tbs = Array.length g.Ir.tbs in
      let tbs =
        Array.init (old_tbs * instances) (fun new_id ->
            let old_id = new_id / instances and k = new_id mod instances in
            let tb = g.Ir.tbs.(old_id) in
            {
              tb with
              Ir.tb_id = new_id;
              chan = (tb.Ir.chan * instances) + k;
              steps =
                Array.map
                  (fun (st : Ir.step) ->
                    {
                      st with
                      Ir.src = Option.map (map_loc g k) st.Ir.src;
                      dst = Option.map (map_loc g k) st.Ir.dst;
                      depends =
                        List.map
                          (fun (dtb, dstep) -> ((dtb * instances) + k, dstep))
                          st.Ir.depends;
                    })
                  tb.Ir.steps;
            })
      in
      {
        g with
        Ir.input_chunks = g.Ir.input_chunks * instances;
        output_chunks = g.Ir.output_chunks * instances;
        scratch_chunks = g.Ir.scratch_chunks * instances;
        tbs;
      })
    ir.Ir.gpus

let blocked (ir : Ir.t) ~instances =
  if instances < 1 then error "instances must be >= 1";
  if instances = 1 then ir
  else begin
    let coll = ir.Ir.collective in
    let in_chunks = Collective.input_chunks coll in
    let out_size = Collective.output_buffer_size coll in
    let in_buf = Collective.input_buffer_size coll in
    (* Instance k's logical inputs are renamed (q, idx + k * in_chunks). *)
    let remap k = remap_chunk (fun q idx -> (q, idx + (k * in_chunks))) in
    let expected ~rank ~index =
      let k = index / out_size and i = index mod out_size in
      Option.map (remap k) (Collective.postcondition coll ~rank ~index:i)
    in
    let initial ~rank ~index =
      let k = index / in_buf and i = index mod in_buf in
      remap k (Collective.precondition coll ~rank ~index:i)
    in
    let coll' =
      Collective.make
        (Collective.Custom
           {
             Collective.custom_name =
               Printf.sprintf "%s-x%d" (Collective.name coll) instances;
             input_chunks = in_chunks * instances;
             output_chunks = Collective.output_chunks coll * instances;
             expected;
             initial = Some initial;
           })
        ~num_ranks:coll.Collective.num_ranks ~inplace:coll.Collective.inplace
        ()
    in
    let map_loc g k (l : Loc.t) =
      { l with Loc.index = l.Loc.index + (k * buffer_size g l.Loc.buf) }
    in
    let ir' =
      {
        ir with
        Ir.name = Printf.sprintf "%s (r=%d)" ir.Ir.name instances;
        collective = coll';
        gpus = replicate_gpus ir ~instances ~map_loc;
      }
    in
    Ir.validate ir';
    ir'
  end

let interleaved (ir : Ir.t) ~instances =
  if instances < 1 then error "instances must be >= 1";
  if instances = 1 then ir
  else begin
    let coll = ir.Ir.collective in
    (match coll.Collective.kind with
    | Collective.Custom _ ->
        error "interleaved replication of custom collectives is unsupported"
    | Collective.Allreduce | Collective.Allgather | Collective.Reduce_scatter
    | Collective.Alltoall | Collective.Alltonext | Collective.Broadcast _
    | Collective.Reduce _ | Collective.Gather _ | Collective.Scatter _ ->
        ());
    Ir.iter_steps ir (fun _ _ st ->
        if st.Ir.count > 1 then
          error
            "interleaved replication requires count=1 steps (aggregated \
             transfers would become non-contiguous); use blocked replication");
    let coll' =
      Collective.make coll.Collective.kind ~num_ranks:coll.Collective.num_ranks
        ~chunk_factor:(coll.Collective.chunk_factor * instances)
        ~inplace:coll.Collective.inplace ()
    in
    let map_loc _g k (l : Loc.t) =
      { l with Loc.index = (l.Loc.index * instances) + k }
    in
    let ir' =
      {
        ir with
        Ir.name = Printf.sprintf "%s (ri=%d)" ir.Ir.name instances;
        collective = coll';
        gpus = replicate_gpus ir ~instances ~map_loc;
      }
    in
    Ir.validate ir';
    ir'
  end
