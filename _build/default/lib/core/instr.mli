(** The MSCCL instruction set (paper §4.2).

    Instructions are either point-to-point communication primitives or
    local primitives executed by a single GPU. The fused instructions
    combine a receive with a reduction and/or a forwarding send; they exist
    because a fused implementation keeps intermediate values in registers
    instead of round-tripping through global memory. *)

type opcode =
  | Send  (** send the chunks at [src] to [send_peer] *)
  | Recv  (** receive chunks from [recv_peer] into [dst] *)
  | Copy  (** local: [dst := src] *)
  | Reduce  (** local: [dst := dst ⊕ src] *)
  | Recv_reduce_copy  (** rrc: [dst := src ⊕ received] *)
  | Recv_copy_send  (** rcs: [dst := received]; forward to [send_peer] *)
  | Recv_reduce_send  (** rrs: send [src ⊕ received]; no local store *)
  | Recv_reduce_copy_send
      (** rrcs: [dst := src ⊕ received]; forward the result *)
  | Nop

val opcode_name : opcode -> string
(** MSCCL-IR XML opcode: ["s"], ["r"], ["cpy"], ["re"], ["rrc"], ["rcs"],
    ["rrs"], ["rrcs"], ["nop"]. *)

val opcode_of_name : string -> opcode option

val sends : opcode -> bool
val receives : opcode -> bool

val reads_local : opcode -> bool
(** Whether the instruction reads its [src] location. *)

val writes_local : opcode -> bool
(** Whether the instruction writes its [dst] location. *)

type t = {
  id : int;
  rank : int;
  mutable op : opcode;
  mutable src : Loc.t option;  (** Local location read (if any). *)
  mutable dst : Loc.t option;  (** Local location written (if any). *)
  mutable send_peer : int option;
  mutable recv_peer : int option;
  mutable ch : int option;  (** Channel; [None] until assignment. *)
  count : int;
  mutable deps : int list;
      (** Processing dependencies: ids of same-rank instructions that must
          execute first. *)
  mutable comm_pred : int option;
      (** For receiving instructions: id of the matching send. *)
  mutable alive : bool;  (** Cleared when fused into another instruction. *)
}

val pp : Format.formatter -> t -> unit
