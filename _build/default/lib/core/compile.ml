type report = {
  chunk_ops : int;
  instrs_before_fusion : int;
  fusion : Fusion.stats;
  instrs_after_fusion : int;
  ir : Ir.t;
}

let compile_dag ?(fuse = true) ?proto ?(instances = 1) ?(verify = true) dag =
  let idag = Instr_dag.of_chunk_dag dag in
  let before = Instr_dag.num_live idag in
  let fusion =
    if fuse then Fusion.fuse idag else { Fusion.rcs = 0; rrcs = 0; rrs = 0 }
  in
  let after = Instr_dag.num_live idag in
  let ir = Schedule.run ?proto idag in
  let ir = Instances.blocked ir ~instances in
  if verify then Verify.check_exn ir;
  {
    chunk_ops = Chunk_dag.num_nodes dag;
    instrs_before_fusion = before;
    fusion;
    instrs_after_fusion = after;
    ir;
  }

let compile ?name ?fuse ?proto ?instances ?verify coll f =
  let dag = Program.trace ?name coll f in
  compile_dag ?fuse ?proto ?instances ?verify dag

let ir ?name ?fuse ?proto ?instances ?verify coll f =
  (compile ?name ?fuse ?proto ?instances ?verify coll f).ir

let pp_report fmt r =
  Format.fprintf fmt
    "%s@ chunk ops: %d, instrs: %d -> %d after fusion (%a)" (Ir.summary r.ir)
    r.chunk_ops r.instrs_before_fusion r.instrs_after_fusion Fusion.pp_stats
    r.fusion
