type opcode =
  | Send
  | Recv
  | Copy
  | Reduce
  | Recv_reduce_copy
  | Recv_copy_send
  | Recv_reduce_send
  | Recv_reduce_copy_send
  | Nop

let opcode_name = function
  | Send -> "s"
  | Recv -> "r"
  | Copy -> "cpy"
  | Reduce -> "re"
  | Recv_reduce_copy -> "rrc"
  | Recv_copy_send -> "rcs"
  | Recv_reduce_send -> "rrs"
  | Recv_reduce_copy_send -> "rrcs"
  | Nop -> "nop"

let opcode_of_name = function
  | "s" -> Some Send
  | "r" -> Some Recv
  | "cpy" -> Some Copy
  | "re" -> Some Reduce
  | "rrc" -> Some Recv_reduce_copy
  | "rcs" -> Some Recv_copy_send
  | "rrs" -> Some Recv_reduce_send
  | "rrcs" -> Some Recv_reduce_copy_send
  | "nop" -> Some Nop
  | _ -> None

let sends = function
  | Send | Recv_copy_send | Recv_reduce_send | Recv_reduce_copy_send -> true
  | Recv | Copy | Reduce | Recv_reduce_copy | Nop -> false

let receives = function
  | Recv | Recv_reduce_copy | Recv_copy_send | Recv_reduce_send
  | Recv_reduce_copy_send ->
      true
  | Send | Copy | Reduce | Nop -> false

let reads_local = function
  | Send | Copy | Reduce | Recv_reduce_copy | Recv_reduce_send
  | Recv_reduce_copy_send ->
      true
  | Recv | Recv_copy_send | Nop -> false

let writes_local = function
  | Recv | Copy | Reduce | Recv_reduce_copy | Recv_copy_send
  | Recv_reduce_copy_send ->
      true
  | Send | Recv_reduce_send | Nop -> false

type t = {
  id : int;
  rank : int;
  mutable op : opcode;
  mutable src : Loc.t option;
  mutable dst : Loc.t option;
  mutable send_peer : int option;
  mutable recv_peer : int option;
  mutable ch : int option;
  count : int;
  mutable deps : int list;
  mutable comm_pred : int option;
  mutable alive : bool;
}

let pp_loc_opt fmt = function
  | None -> Format.pp_print_string fmt "-"
  | Some l -> Loc.pp fmt l

let pp fmt t =
  Format.fprintf fmt "#%d@@%d %s src=%a dst=%a%s%s%s deps=[%s]%s" t.id t.rank
    (opcode_name t.op) pp_loc_opt t.src pp_loc_opt t.dst
    (match t.send_peer with
    | None -> ""
    | Some p -> Printf.sprintf " ->%d" p)
    (match t.recv_peer with
    | None -> ""
    | Some p -> Printf.sprintf " <-%d" p)
    (match t.ch with None -> "" | Some c -> Printf.sprintf " ch%d" c)
    (String.concat "," (List.map string_of_int t.deps))
    (if t.alive then "" else " (dead)")
