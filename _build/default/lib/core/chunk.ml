type t =
  | Uninit
  | Val of (int * int) list  (* sorted multiset of (rank, index) inputs *)

exception Uninitialized_data

let uninit = Uninit

let input ~rank ~index = Val [ (rank, index) ]

let cmp_id (r1, i1) (r2, i2) =
  match Int.compare r1 r2 with 0 -> Int.compare i1 i2 | c -> c

(* Merge of two sorted multisets, keeping duplicates. *)
let rec merge a b =
  match (a, b) with
  | [], ys -> ys
  | xs, [] -> xs
  | x :: xs, y :: ys ->
      if cmp_id x y <= 0 then x :: merge xs (y :: ys)
      else y :: merge (x :: xs) ys

let reduce a b =
  match (a, b) with
  | Uninit, _ | _, Uninit -> raise Uninitialized_data
  | Val xs, Val ys -> Val (merge xs ys)

let reduce_many = function
  | [] -> invalid_arg "Chunk.reduce_many: empty list"
  | c :: cs -> List.fold_left reduce c cs

let is_uninit = function Uninit -> true | Val _ -> false

let inputs = function Uninit -> None | Val xs -> Some xs

let allreduce_expected ~num_ranks ~index =
  Val (List.init num_ranks (fun rank -> (rank, index)))

let equal a b =
  match (a, b) with
  | Uninit, Uninit -> true
  | Val xs, Val ys -> xs = ys
  | Uninit, Val _ | Val _, Uninit -> false

let compare a b =
  match (a, b) with
  | Uninit, Uninit -> 0
  | Uninit, Val _ -> -1
  | Val _, Uninit -> 1
  | Val xs, Val ys -> Stdlib.compare xs ys

let hash = function
  | Uninit -> 0
  | Val xs -> Hashtbl.hash xs

let pp fmt = function
  | Uninit -> Format.pp_print_string fmt "?"
  | Val [ (r, i) ] -> Format.fprintf fmt "c(%d,%d)" r i
  | Val xs ->
      Format.fprintf fmt "sum{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "+")
           (fun fmt (r, i) -> Format.fprintf fmt "(%d,%d)" r i))
        xs

let to_string t = Format.asprintf "%a" pp t
