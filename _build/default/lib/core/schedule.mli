(** Scheduling the Instruction DAG into MSCCL-IR (paper §5).

    Scheduling assigns every instruction to a thread block and every
    communication edge to a channel, honoring:

    - a thread block has at most one send and one receive connection;
    - a connection (src, dst, channel) is owned by exactly one sending and
      one receiving thread block;
    - channels requested by DSL directives are respected, and a chain of
      fused instructions shares one channel (a fused instruction carries a
      single channel for both its connections);
    - instructions are laid out in a single global topological order using
      the (depth, reverse-depth) priority heuristic of §5.2, so the
      sequential execution order inside each thread block cannot introduce
      deadlocks;
    - processing edges that cross thread blocks become explicit
      [(tb, step)] dependencies enforced by semaphores at run time;
    - per-connection send order matches receive order (the runtime's FIFO
      slots deliver in order);
    - no schedule ever has more than [slots] outstanding sends on a
      connection (paper §6.1: the compiler prevents such schedules because
      the runtime's bounded FIFO would deadlock). The k-th send on a
      connection is placed only after the (k - slots)-th receive, so every
      runtime waiting edge — program order, semaphores, data delivery and
      FIFO back-pressure — points forward in the assignment order, making
      the result deadlock-free by construction.

    Raises {!Scheduling_error} when user channel directives conflict (for
    example two different channels forced onto one fused chain, or more
    than one send connection forced into a thread block). *)

exception Scheduling_error of string

val run :
  ?proto:Msccl_topology.Protocol.t ->
  ?name:string ->
  ?slots:int ->
  Instr_dag.t ->
  Ir.t
(** Schedules a (typically fused and compacted) Instruction DAG. [proto]
    defaults to [Simple]; [name] defaults to the DAG's name; [slots]
    defaults to the protocol's FIFO slot count (switching a scheduled IR to
    a protocol with fewer slots requires re-checking deadlock freedom with
    {!Verify.check_deadlock_free}). The result passes {!Ir.validate}. *)

val assign_channels : Instr_dag.t -> unit
(** First phase only, exposed for tests: unifies channels along
    communication edges and fused chains, checks directive consistency, and
    fills every remaining [ch] with the lowest valid channel. *)
