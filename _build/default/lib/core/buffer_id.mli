(** The three named GPU buffers visible to MSCCLang programs (paper §3.1).

    - [Input] contains the collective's input data;
    - [Output] is uninitialized and receives the result;
    - [Scratch] is uninitialized temporary storage whose size is deduced
      from the highest index a program accesses.

    In-place algorithms alias [Input] and [Output]. *)

type t =
  | Input
  | Output
  | Scratch

val all : t list

val name : t -> string
(** Short name used in MSCCL-IR XML: ["i"], ["o"], ["s"]. *)

val long_name : t -> string
(** ["input"], ["output"], ["scratch"]. *)

val of_name : string -> t option
(** Accepts both short and long names, case-insensitive. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
