(** The end-to-end MSCCLang compiler pipeline (paper Fig. 2):

    DSL program → tracing (Chunk DAG) → lowering (Instruction DAG) →
    instruction fusion → scheduling → MSCCL-IR → optional whole-program
    replication → verification. *)

type report = {
  chunk_ops : int;  (** Chunk DAG nodes traced. *)
  instrs_before_fusion : int;
  fusion : Fusion.stats;
  instrs_after_fusion : int;
  ir : Ir.t;
}

val compile_dag :
  ?fuse:bool ->
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  Chunk_dag.t ->
  report
(** Lowers, fuses ([fuse] defaults to [true]), schedules, replicates
    ([instances] defaults to 1, blocked layout) and — unless [verify] is
    [false] — checks the result with {!Verify.check} (raising [Failure] on
    any violation). *)

val compile :
  ?name:string ->
  ?fuse:bool ->
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  Collective.t ->
  (Program.t -> unit) ->
  report
(** Traces the program and runs {!compile_dag}. *)

val ir :
  ?name:string ->
  ?fuse:bool ->
  ?proto:Msccl_topology.Protocol.t ->
  ?instances:int ->
  ?verify:bool ->
  Collective.t ->
  (Program.t -> unit) ->
  Ir.t
(** Shorthand for [(compile ... ).ir]. *)

val pp_report : Format.formatter -> report -> unit
