(** End-to-end workload replay (paper §7.6).

    The paper reports MSCCLang accelerating two production workloads:

    - serving a public-facing language model on 8×A100 (1.22–1.29× GPU-time
      speedup, 20% overall): modelled as an inference step's AllReduce
      trace on one NDv4 node;
    - training a large Mixture-of-Experts model on 256×A100 (1.10–1.89×
      depending on the model architecture): modelled as a training step's
      communication — two expert-parallel AllToAlls across all 256 GPUs
      plus a data-parallel gradient AllReduce within each 2-node group —
      for three expert sizes (the architecture axis).

    For each call the MSCCLang runtime picks the fastest algorithm for the
    size range and falls back to NCCL when none wins (paper §6: dynamic
    algorithm selection); the baseline runs everything through NCCL. *)

type row = {
  workload : string;
  nccl_time : float;  (** Seconds per step, baseline. *)
  msccl_time : float;  (** Seconds per step with MSCCLang algorithms. *)
  speedup : float;
}

val run : unit -> row list
(** Simulates all workloads (several minutes of compute for the 256-GPU
    traces). *)

val run_inference_only : unit -> row list
(** Just the single-node inference workload (cheap; used by tests). *)

val print : Format.formatter -> row list -> unit
