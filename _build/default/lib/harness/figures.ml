open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms
module B = Msccl_baselines

let sim ?(occupancy = true) ?max_tiles topo ir ~buffer_bytes =
  (Simulator.run_buffer ~topo ~buffer_bytes ~check_occupancy:occupancy
     ?max_tiles ir)
    .Simulator.time

let times ?occupancy ?max_tiles topo ir sizes =
  List.map
    (fun buffer_bytes -> sim ?occupancy ?max_tiles topo ir ~buffer_bytes)
    sizes

(* ------------------------------------------------------------------ *)
(* Fig. 8a/8b: single-node AllReduce                                   *)
(* ------------------------------------------------------------------ *)

let allreduce_single_node ~fig_id ~title ~topo ~ring_variants ~sizes () =
  let num_ranks = T.Topology.num_ranks topo in
  let nccl = B.Nccl_model.allreduce topo in
  let baseline = List.map (fun buffer_bytes -> nccl ~buffer_bytes) sizes in
  let allpairs r proto =
    let ir = A.Allpairs_allreduce.ir ~proto ~instances:r ~num_ranks () in
    Report.speedup_series
      ~label:(Printf.sprintf "AllPairs r=%d %s" r (T.Protocol.name proto))
      ~baseline (times topo ir sizes)
  in
  let ring (ch, r, proto) =
    let ir =
      A.Ring_allreduce.ir ~proto ~channels:ch ~instances:r ~num_ranks ()
    in
    Report.speedup_series
      ~label:(Printf.sprintf "Ring ch=%d r=%d %s" ch r (T.Protocol.name proto))
      ~baseline (times topo ir sizes)
  in
  {
    Report.fig_id;
    title;
    ylabel = "speedup over NCCL";
    sizes;
    series =
      [ allpairs 2 T.Protocol.LL; allpairs 4 T.Protocol.LL ]
      @ List.map ring ring_variants;
  }

(* The paper's winning Ring uses ch=4 r=8; in this simulator's cost model
   the channel distribution itself does not pay (see EXPERIMENTS.md), so
   the tuned Ring keeps the paper's r and protocol with ch=1. *)
let fig8a () =
  allreduce_single_node ~fig_id:"fig8a" ~title:"1-node 8xA100 AllReduce"
    ~topo:(T.Presets.ndv4 ~nodes:1)
    ~ring_variants:
      [ (1, 8, T.Protocol.LL); (1, 8, T.Protocol.LL128) ]
    ~sizes:(Sweep.sizes ~from:(Sweep.kib 1.) ~upto:(Sweep.mib 32.))
    ()

let fig8b () =
  allreduce_single_node ~fig_id:"fig8b" ~title:"1-node 16xV100 AllReduce"
    ~topo:(T.Presets.dgx2 ~nodes:1)
    ~ring_variants:
      [ (1, 8, T.Protocol.LL); (1, 4, T.Protocol.LL128) ]
    ~sizes:(Sweep.sizes ~from:(Sweep.kib 2.) ~upto:(Sweep.mib 32.))
    ()

(* ------------------------------------------------------------------ *)
(* Fig. 8c/8d: hierarchical AllReduce on two nodes                     *)
(* ------------------------------------------------------------------ *)

let allreduce_two_node ~fig_id ~title ~topo ~sizes () =
  let nodes = T.Topology.num_nodes topo in
  let g = T.Topology.gpus_per_node topo in
  let nccl = B.Nccl_model.allreduce topo in
  let composed = B.Nccl_composed.time topo in
  let baseline = List.map (fun buffer_bytes -> nccl ~buffer_bytes) sizes in
  let hier r proto =
    let ir =
      A.Hierarchical_allreduce.ir ~proto ~instances:r ~nodes ~gpus_per_node:g
        ()
    in
    Report.speedup_series
      ~label:(Printf.sprintf "Hierarchical %s r=%d" (T.Protocol.name proto) r)
      ~baseline
      (times ~max_tiles:16 topo ir sizes)
  in
  {
    Report.fig_id;
    title;
    ylabel = "speedup over NCCL";
    sizes;
    series =
      [
        hier 1 T.Protocol.LL;
        hier 2 T.Protocol.LL128;
        (* The paper's Simple configuration uses r=4; in this cost model
           saturating the NVLink egress at the largest sizes takes r=8
           (see EXPERIMENTS.md). *)
        hier 8 T.Protocol.Simple;
        Report.speedup_series ~label:"NCCL composed" ~baseline
          (List.map (fun buffer_bytes -> composed ~buffer_bytes) sizes);
      ];
  }

let fig8c () =
  allreduce_two_node ~fig_id:"fig8c" ~title:"2-node 16xA100 AllReduce"
    ~topo:(T.Presets.ndv4 ~nodes:2)
    ~sizes:(Sweep.sizes_coarse ~from:(Sweep.kib 1.) ~upto:(Sweep.gib 4.))
    ()

let fig8d () =
  allreduce_two_node ~fig_id:"fig8d" ~title:"2-node 32xV100 AllReduce"
    ~topo:(T.Presets.dgx2 ~nodes:2)
    ~sizes:(Sweep.sizes_coarse ~from:(Sweep.kib 1.) ~upto:(Sweep.gib 4.))
    ()

(* ------------------------------------------------------------------ *)
(* Fig. 8e/8f: Two-Step AllToAll                                       *)
(* ------------------------------------------------------------------ *)

let alltoall_fig ~fig_id ~title ~topo ~sizes () =
  let nodes = T.Topology.num_nodes topo in
  let g = T.Topology.gpus_per_node topo in
  let cuda = B.Cuda_two_step.time topo in
  let nccl = B.Nccl_model.alltoall topo in
  let baseline = List.map (fun buffer_bytes -> cuda ~buffer_bytes) sizes in
  let two_step proto =
    let ir =
      A.Two_step_alltoall.ir ~proto ~verify:false ~nodes ~gpus_per_node:g ()
    in
    Report.speedup_series
      ~label:(Printf.sprintf "Two-Step %s" (T.Protocol.name proto))
      ~baseline
      (times ~occupancy:false topo ir sizes)
  in
  {
    Report.fig_id;
    title;
    ylabel = "speedup over CUDA Two-Step";
    sizes;
    series =
      [
        two_step T.Protocol.LL128;
        two_step T.Protocol.Simple;
        Report.speedup_series ~label:"NCCL" ~baseline
          (List.map (fun buffer_bytes -> nccl ~buffer_bytes) sizes);
      ];
  }

let fig8e () =
  alltoall_fig ~fig_id:"fig8e" ~title:"256xA100 AllToAll (32 NDv4 nodes)"
    ~topo:(T.Presets.ndv4 ~nodes:32)
    ~sizes:(Sweep.sizes_coarse ~from:(Sweep.kib 256.) ~upto:(Sweep.gib 4.))
    ()

let fig8f () =
  alltoall_fig ~fig_id:"fig8f" ~title:"4-node 64xV100 AllToAll"
    ~topo:(T.Presets.dgx2 ~nodes:4)
    ~sizes:(Sweep.sizes_coarse ~from:(Sweep.mib 1.) ~upto:(Sweep.gib 4.))
    ()

(* ------------------------------------------------------------------ *)
(* Fig. 8g/8h: AllToNext                                               *)
(* ------------------------------------------------------------------ *)

let alltonext_fig ~fig_id ~title ~topo ~rs ~sizes () =
  let nodes = T.Topology.num_nodes topo in
  let g = T.Topology.gpus_per_node topo in
  let cuda = B.Cuda_p2p_next.time topo in
  let baseline = List.map (fun buffer_bytes -> cuda ~buffer_bytes) sizes in
  let variant r =
    let ir =
      A.Alltonext.ir ~proto:T.Protocol.Simple ~instances:r ~verify:false
        ~nodes ~gpus_per_node:g ()
    in
    (* High parallelization factors exceed the resident-thread-block SM
       budget; NCCL-style time-sharing is assumed (see EXPERIMENTS.md). *)
    Report.speedup_series
      ~label:(Printf.sprintf "AllToNext r=%d" r)
      ~baseline
      (times ~occupancy:false ~max_tiles:8 topo ir sizes)
  in
  {
    Report.fig_id;
    title;
    ylabel = "speedup over CUDA P2P";
    sizes;
    series = List.map variant rs;
  }

let fig8g () =
  alltonext_fig ~fig_id:"fig8g" ~title:"3-node 24xA100 AllToNext"
    ~topo:(T.Presets.ndv4 ~nodes:3)
    ~rs:[ 4; 8; 16 ]
    ~sizes:(Sweep.sizes ~from:(Sweep.kib 4.) ~upto:(Sweep.mib 256.))
    ()

let fig8h () =
  alltonext_fig ~fig_id:"fig8h" ~title:"4-node 64xV100 AllToNext"
    ~topo:(T.Presets.dgx2 ~nodes:4)
    ~rs:[ 2; 4; 8 ]
    ~sizes:(Sweep.sizes ~from:(Sweep.kib 4.) ~upto:(Sweep.mib 256.))
    ()

(* ------------------------------------------------------------------ *)
(* Fig. 11: SCCL comparison                                            *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  let topo = T.Presets.dgx1 () in
  let sizes = Sweep.sizes_coarse ~from:(Sweep.kib 32.) ~upto:(Sweep.gib 1.) in
  let sccl_ir = A.Allgather_sccl.ir ~proto:T.Protocol.Sccl () in
  let sccl ~buffer_bytes = sim ~max_tiles:64 topo sccl_ir ~buffer_bytes in
  let mscclang proto =
    let ir = A.Allgather_sccl.ir ~proto () in
    {
      Report.label = Printf.sprintf "MSCCLang %s (1,2,2)" (T.Protocol.name proto);
      values =
        List.map
          (fun buffer_bytes ->
            sim ~max_tiles:64 topo ir ~buffer_bytes *. 1e6)
          sizes;
    }
  in
  {
    Report.fig_id = "fig11";
    title = "(1,2,2) AllGather on DGX-1 8xV100";
    ylabel = "latency (us)";
    sizes;
    series =
      [
        {
          Report.label = "SCCL (1,2,2)";
          values =
            List.map (fun buffer_bytes -> sccl ~buffer_bytes *. 1e6) sizes;
        };
        mscclang T.Protocol.Simple;
        mscclang T.Protocol.LL;
      ];
  }

let all =
  [
    ("fig8a", fig8a); ("fig8b", fig8b); ("fig8c", fig8c); ("fig8d", fig8d);
    ("fig8e", fig8e); ("fig8f", fig8f); ("fig8g", fig8g); ("fig8h", fig8h);
    ("fig11", fig11);
  ]
