lib/harness/figures.ml: List Msccl_algorithms Msccl_baselines Msccl_core Msccl_topology Printf Report Simulator Sweep
