lib/harness/tuner.ml: Float Format Ir List Msccl_algorithms Msccl_core Msccl_topology Simulator Sweep
