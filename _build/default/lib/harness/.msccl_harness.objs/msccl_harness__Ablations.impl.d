lib/harness/ablations.ml: Collective Compile Instances List Msccl_algorithms Msccl_core Msccl_topology Report Simulator Sweep
