lib/harness/tuner.mli: Format Msccl_baselines Msccl_core Msccl_topology
