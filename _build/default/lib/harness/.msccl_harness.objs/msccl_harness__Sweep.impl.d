lib/harness/sweep.ml: Float List Option Printf
