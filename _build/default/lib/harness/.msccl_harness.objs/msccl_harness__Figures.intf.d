lib/harness/figures.mli: Report
