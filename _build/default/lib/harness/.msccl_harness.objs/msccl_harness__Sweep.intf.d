lib/harness/sweep.mli:
