lib/harness/e2e.mli: Format
