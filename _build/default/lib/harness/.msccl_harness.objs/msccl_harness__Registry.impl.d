lib/harness/registry.ml: List Msccl_algorithms Msccl_core Msccl_topology Printf String
