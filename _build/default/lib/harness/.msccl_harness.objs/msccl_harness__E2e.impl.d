lib/harness/e2e.ml: Float Format List Msccl_algorithms Msccl_baselines Msccl_core Msccl_topology Printf Simulator
