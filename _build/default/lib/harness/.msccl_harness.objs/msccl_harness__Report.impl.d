lib/harness/report.ml: Buffer Format List Printf String Sweep
