lib/harness/registry.mli: Msccl_core Msccl_topology
