open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms

(* slowdown factor: time without the optimization / time with it *)
let ratio_series ~label ~without ~with_ =
  Report.speedup_series ~label ~baseline:without with_

let sim ?max_tiles ?(occupancy = true) topo ir sizes =
  List.map
    (fun buffer_bytes ->
      (Simulator.run_buffer ~topo ~buffer_bytes ?max_tiles
         ~check_occupancy:occupancy ir)
        .Simulator.time)
    sizes

let pipelining () =
  let topo = T.Presets.ndv4 ~nodes:2 in
  let ir =
    A.Hierarchical_allreduce.ir ~proto:T.Protocol.Simple ~instances:4
      ~verify:false ~nodes:2 ~gpus_per_node:8 ()
  in
  let sizes = Sweep.sizes_coarse ~from:(Sweep.mib 1.) ~upto:(Sweep.gib 4.) in
  {
    Report.fig_id = "ab-pipeline";
    title = "Ablation: tile pipelining (hierarchical AllReduce, 2x8xA100)";
    ylabel = "slowdown with sequential tiles";
    sizes;
    series =
      [
        ratio_series ~label:"sequential/pipelined"
          ~without:(sim ~max_tiles:1 topo ir sizes)
          ~with_:(sim ~max_tiles:16 topo ir sizes);
      ];
  }

let aggregation () =
  let topo = T.Presets.ndv4 ~nodes:4 in
  let mk aggregate =
    A.Two_step_alltoall.ir ~proto:T.Protocol.Simple ~aggregate ~verify:false
      ~nodes:4 ~gpus_per_node:8 ()
  in
  let sizes = Sweep.sizes_coarse ~from:(Sweep.kib 256.) ~upto:(Sweep.gib 1.) in
  {
    Report.fig_id = "ab-aggregate";
    title = "Ablation: IB send aggregation (Two-Step AllToAll, 4x8xA100)";
    ylabel = "slowdown without aggregation";
    sizes;
    series =
      [
        ratio_series ~label:"per-chunk/aggregated"
          ~without:(sim ~occupancy:false topo (mk false) sizes)
          ~with_:(sim ~occupancy:false topo (mk true) sizes);
      ];
  }

let ring_with_fusion fuse =
  let num_ranks = 8 in
  let coll =
    Collective.make Collective.Allreduce ~num_ranks ~chunk_factor:num_ranks
      ~inplace:true ()
  in
  let report =
    Compile.compile ~name:"ring" ~fuse ~verify:false coll
      (A.Ring_allreduce.program ~num_ranks ~channels:1)
  in
  Instances.blocked report.Compile.ir ~instances:8

let fusion () =
  let topo = T.Presets.ndv4 ~nodes:1 in
  let sizes = Sweep.sizes ~from:(Sweep.kib 8.) ~upto:(Sweep.mib 64.) in
  {
    Report.fig_id = "ab-fusion";
    title = "Ablation: instruction fusion (Ring AllReduce r=8, 8xA100)";
    ylabel = "slowdown without rcs/rrcs/rrs fusion";
    sizes;
    series =
      [
        ratio_series ~label:"unfused/fused"
          ~without:(sim topo (ring_with_fusion false) sizes)
          ~with_:(sim topo (ring_with_fusion true) sizes);
      ];
  }

let channel_distribution () =
  let topo = T.Presets.ndv4 ~nodes:1 in
  let mk channels =
    A.Ring_allreduce.ir ~proto:T.Protocol.LL ~channels ~instances:8
      ~verify:false ~num_ranks:8 ()
  in
  let sizes = Sweep.sizes ~from:(Sweep.kib 8.) ~upto:(Sweep.mib 64.) in
  {
    Report.fig_id = "ab-channels";
    title = "Ablation: logical-ring channel distribution (8xA100, LL r=8)";
    ylabel = "ch=4 time / ch=1 time";
    sizes;
    series =
      [
        ratio_series ~label:"ch4/ch1"
          ~without:(sim topo (mk 4) sizes)
          ~with_:(sim topo (mk 1) sizes);
      ];
  }

let all =
  [
    ("ab-pipeline", pipelining);
    ("ab-aggregate", aggregation);
    ("ab-fusion", fusion);
    ("ab-channels", channel_distribution);
  ]
