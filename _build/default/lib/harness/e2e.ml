open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms
module B = Msccl_baselines

type row = {
  workload : string;
  nccl_time : float;
  msccl_time : float;
  speedup : float;
}

let mib = 1024. *. 1024.

(* The runtime picks the fastest registered algorithm for each size and
   falls back to NCCL otherwise (paper §6). *)
let best_of candidates ~nccl ~buffer_bytes =
  List.fold_left
    (fun acc time -> Float.min acc (time ~buffer_bytes))
    (nccl ~buffer_bytes) candidates

(* 8xA100 inference step: one AllReduce per transformer layer's row-parallel
   matmuls; mid-sized buffers dominated by latency, where AllPairs and the
   tuned Ring win (Fig. 8a). *)
let inference () =
  let topo = T.Presets.ndv4 ~nodes:1 in
  let num_ranks = 8 in
  let sim ir ~buffer_bytes =
    (Simulator.run_buffer ~topo ~buffer_bytes ir).Simulator.time
  in
  let candidates =
    [
      sim (A.Allpairs_allreduce.ir ~proto:T.Protocol.LL ~instances:2 ~num_ranks ());
      sim (A.Allpairs_allreduce.ir ~proto:T.Protocol.LL ~instances:4 ~num_ranks ());
      sim (A.Ring_allreduce.ir ~proto:T.Protocol.LL ~instances:8 ~num_ranks ());
      sim (A.Ring_allreduce.ir ~proto:T.Protocol.LL128 ~instances:8 ~num_ranks ());
    ]
  in
  let nccl = B.Nccl_model.allreduce topo in
  (* (bytes, calls per step): attention + MLP all-reduces of a GPT-scale
     decoder, plus one logits-sized collective. *)
  let trace = [ (1. *. mib, 96); (3. *. mib, 96); (16. *. mib, 1) ] in
  let total f =
    List.fold_left
      (fun acc (buffer_bytes, calls) ->
        acc +. (float_of_int calls *. f ~buffer_bytes))
      0. trace
  in
  let nccl_time = total nccl in
  let msccl_time = total (fun ~buffer_bytes ->
      best_of candidates ~nccl ~buffer_bytes)
  in
  {
    workload = "LM inference, 8xA100";
    nccl_time;
    msccl_time;
    speedup = nccl_time /. msccl_time;
  }

(* 256xA100 MoE training step: expert-parallel AllToAll across all GPUs
   (twice: dispatch and combine) plus the data-parallel gradient AllReduce
   within each 2-node group. The expert size is the paper's "model
   architecture" axis. *)
let moe ~label ~alltoall_bytes ~allreduce_bytes =
  let a2a_topo = T.Presets.ndv4 ~nodes:32 in
  let sim ?(max_tiles = 4) topo ir ~buffer_bytes =
    (Simulator.run_buffer ~topo ~buffer_bytes ~max_tiles
       ~check_occupancy:false ir)
      .Simulator.time
  in
  let two_step proto =
    sim a2a_topo
      (A.Two_step_alltoall.ir ~proto ~verify:false ~nodes:32 ~gpus_per_node:8
         ())
  in
  let nccl_a2a = B.Nccl_model.alltoall a2a_topo in
  let msccl_a2a ~buffer_bytes =
    best_of
      [ two_step T.Protocol.LL128; two_step T.Protocol.Simple ]
      ~nccl:nccl_a2a ~buffer_bytes
  in
  let dp_topo = T.Presets.ndv4 ~nodes:2 in
  let hier proto r =
    sim ~max_tiles:16 dp_topo
      (A.Hierarchical_allreduce.ir ~proto ~instances:r ~verify:false ~nodes:2
         ~gpus_per_node:8 ())
  in
  let nccl_ar = B.Nccl_model.allreduce dp_topo in
  let msccl_ar ~buffer_bytes =
    best_of
      [
        hier T.Protocol.LL 1; hier T.Protocol.LL128 2; hier T.Protocol.Simple 4;
      ]
      ~nccl:nccl_ar ~buffer_bytes
  in
  let step a2a ar =
    (2. *. a2a ~buffer_bytes:alltoall_bytes)
    +. ar ~buffer_bytes:allreduce_bytes
  in
  let nccl_time = step nccl_a2a nccl_ar in
  let msccl_time = step msccl_a2a msccl_ar in
  {
    workload = Printf.sprintf "MoE training, 256xA100 (%s)" label;
    nccl_time;
    msccl_time;
    speedup = nccl_time /. msccl_time;
  }

let run_inference_only () = [ inference () ]

let run () =
  [
    inference ();
    moe ~label:"small experts" ~alltoall_bytes:(64. *. mib)
      ~allreduce_bytes:(64. *. mib);
    moe ~label:"medium experts" ~alltoall_bytes:(256. *. mib)
      ~allreduce_bytes:(64. *. mib);
    moe ~label:"large experts" ~alltoall_bytes:(1024. *. mib)
      ~allreduce_bytes:(64. *. mib);
  ]

let print fmt rows =
  Format.fprintf fmt "== e2e: end-to-end workloads (paper §7.6) ==@.";
  Format.fprintf fmt "%-40s %12s %12s %9s@." "workload" "NCCL (ms)"
    "MSCCL (ms)" "speedup";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-40s %12.3f %12.3f %8.2fx@." r.workload
        (r.nccl_time *. 1e3) (r.msccl_time *. 1e3) r.speedup)
    rows;
  Format.fprintf fmt "@."
