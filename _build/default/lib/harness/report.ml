type series = {
  label : string;
  values : float list;
}

type figure = {
  fig_id : string;
  title : string;
  ylabel : string;
  sizes : float list;
  series : series list;
}

let speedup_series ~label ~baseline values =
  { label; values = List.map2 (fun b v -> b /. v) baseline values }

let print fmt fig =
  Format.fprintf fmt "== %s: %s (%s) ==@." fig.fig_id fig.title fig.ylabel;
  let width =
    List.fold_left (fun w s -> max w (String.length s.label)) 8 fig.series
  in
  Format.fprintf fmt "%10s" "size";
  List.iter (fun s -> Format.fprintf fmt " | %*s" width s.label) fig.series;
  Format.fprintf fmt "@.";
  List.iteri
    (fun i size ->
      Format.fprintf fmt "%10s" (Sweep.pretty size);
      List.iter
        (fun s -> Format.fprintf fmt " | %*.3f" width (List.nth s.values i))
        fig.series;
      Format.fprintf fmt "@.")
    fig.sizes;
  Format.fprintf fmt "@."

let peak s ~sizes =
  List.fold_left2
    (fun (best, at) v size -> if v > best then (v, size) else (best, at))
    (neg_infinity, 0.) s.values sizes

let summarize fig =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "%s %s:\n" fig.fig_id fig.title);
  List.iter
    (fun s ->
      let v, at = peak s ~sizes:fig.sizes in
      Buffer.add_string b
        (Printf.sprintf "  %-28s peak %.2f at %s\n" s.label v (Sweep.pretty at)))
    fig.series;
  Buffer.contents b
