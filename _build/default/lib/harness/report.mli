(** Figure reproduction tables.

    Each paper figure becomes a {!figure}: an x-axis of buffer sizes and a
    set of named series (speedups over a baseline, or absolute latencies).
    {!print} renders the same rows the paper plots; {!summarize} extracts
    the headline numbers (peak speedup and where it occurs) recorded in
    EXPERIMENTS.md. *)

type series = {
  label : string;
  values : float list;  (** One value per x-axis point. *)
}

type figure = {
  fig_id : string;  (** e.g. ["fig8a"]. *)
  title : string;
  ylabel : string;  (** e.g. ["speedup over NCCL"]. *)
  sizes : float list;  (** X axis, bytes. *)
  series : series list;
}

val speedup_series :
  label:string -> baseline:float list -> float list -> series
(** Pointwise [baseline /. value] (higher = faster than baseline). *)

val print : Format.formatter -> figure -> unit
(** A column-per-series table with pretty sizes. *)

val peak : series -> sizes:float list -> float * float
(** [(best value, size where it occurs)]. *)

val summarize : figure -> string
(** One line per series: peak value and its buffer size. *)
