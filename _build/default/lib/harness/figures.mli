(** One entry point per figure of the paper's evaluation (§7).

    Every function compiles the MSCCLang algorithms and baselines involved,
    sweeps the paper's buffer-size axis through the simulator, and returns
    the same series the figure plots. Figures 8a–8h are speedups over the
    respective baseline (NCCL, or the hand-written CUDA implementation);
    Figure 11 is absolute latency in microseconds.

    Scale notes (documented per-experiment in EXPERIMENTS.md):

    - fig8e uses 32 NDv4 nodes to reach the paper's 256 A100 GPUs (the
      paper says "16-node 256×A100"; NDv4 nodes have 8 GPUs);
    - the AllToNext figures disable the SM-occupancy check for the largest
      parallelization factors, modelling NCCL-style time-sharing that the
      resident-thread-block model would reject;
    - sweeps over many-hundred-GPU systems use every-other-size sampling
      to bound simulation cost. *)

val fig8a : unit -> Report.figure
(** 1-node 8×A100 AllReduce speedup over NCCL. *)

val fig8b : unit -> Report.figure
(** 1-node 16×V100 AllReduce speedup over NCCL. *)

val fig8c : unit -> Report.figure
(** 2-node 16×A100 AllReduce (hierarchical) speedup over NCCL, including
    the NCCL-collectives-composed implementation. *)

val fig8d : unit -> Report.figure
(** 2-node 32×V100 AllReduce. *)

val fig8e : unit -> Report.figure
(** 256×A100 AllToAll speedup over the hand-optimized CUDA Two-Step. *)

val fig8f : unit -> Report.figure
(** 4-node 64×V100 AllToAll speedup over CUDA Two-Step. *)

val fig8g : unit -> Report.figure
(** 3-node 24×A100 AllToNext speedup over the CUDA point-to-point
    baseline. *)

val fig8h : unit -> Report.figure
(** 4-node 64×V100 AllToNext speedup over CUDA. *)

val fig11 : unit -> Report.figure
(** (1,2,2) AllGather on DGX-1: latency (µs) of SCCL vs MSCCLang
    Simple/LL. *)

val all : (string * (unit -> Report.figure)) list
(** Every figure keyed by id, in paper order. *)
