(** Automatic size-range algorithm selection (paper §6).

    "The runtime dynamically selects the right algorithm to invoke based on
    user configurable size ranges and falls back to NCCL's built-in
    algorithms otherwise. This allows a user to hyper-optimize MSCCLang
    programs to a specific use case."

    The tuner builds those size ranges: it sweeps a set of candidate
    configurations (algorithm × protocol × parallelization) and the NCCL
    baseline over a buffer-size grid on a given topology, then merges
    adjacent grid points won by the same candidate into contiguous ranges.
    The result is the selection table a deployment would install. *)

type candidate = {
  cand_name : string;  (** e.g. ["allpairs LL r=2"]. *)
  cand_ir : Msccl_core.Ir.t;
  cand_max_tiles : int;
}

val candidate :
  ?max_tiles:int -> name:string -> Msccl_core.Ir.t -> candidate

type entry = {
  lo : float;  (** Range start in bytes (inclusive). *)
  hi : float;  (** Range end in bytes (inclusive grid point). *)
  choice : string;  (** Winning candidate, or ["NCCL"] for the fallback. *)
  speedup : float;  (** Expected speedup over NCCL at the range's center. *)
}

type table = {
  t_topology : string;
  t_entries : entry list;  (** Contiguous, covering the swept range. *)
}

val tune :
  topo:Msccl_topology.Topology.t ->
  nccl:Msccl_baselines.Nccl_model.sized_time ->
  candidates:candidate list ->
  ?sizes:float list ->
  unit ->
  table
(** [sizes] defaults to powers of two from 1KB to 1GB. *)

val select : table -> buffer_bytes:float -> string
(** The table's choice for a size (clamping to the nearest range). *)

val allreduce_candidates : Msccl_topology.Topology.t -> candidate list
(** The AllReduce configurations of the paper's evaluation: All Pairs
    (LL, r=2/4) and tuned Ring (LL/LL128, r=8) on one node; hierarchical
    (LL r=1 / LL128 r=2 / Simple r=8) on several. *)

val alltoall_candidates : Msccl_topology.Topology.t -> candidate list
(** Two-Step (LL128 / Simple) on multi-node topologies. *)

val pp_table : Format.formatter -> table -> unit
