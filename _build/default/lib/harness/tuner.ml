open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms

type candidate = {
  cand_name : string;
  cand_ir : Ir.t;
  cand_max_tiles : int;
}

let candidate ?(max_tiles = 4) ~name ir =
  { cand_name = name; cand_ir = ir; cand_max_tiles = max_tiles }

type entry = {
  lo : float;
  hi : float;
  choice : string;
  speedup : float;
}

type table = {
  t_topology : string;
  t_entries : entry list;
}

let nccl_name = "NCCL"

let tune ~topo ~nccl ~candidates ?sizes () =
  let sizes =
    match sizes with
    | Some s -> s
    | None -> Sweep.sizes ~from:1024. ~upto:(Sweep.gib 1.)
  in
  if sizes = [] then invalid_arg "Tuner.tune: empty size grid";
  (* Winner and speedup at every grid point. *)
  let points =
    List.map
      (fun buffer_bytes ->
        let base = nccl ~buffer_bytes in
        let best =
          List.fold_left
            (fun (bn, bt) c ->
              let t =
                (Simulator.run_buffer ~topo ~buffer_bytes
                   ~max_tiles:c.cand_max_tiles ~check_occupancy:false
                   c.cand_ir)
                  .Simulator.time
              in
              if t < bt then (c.cand_name, t) else (bn, bt))
            (nccl_name, base) candidates
        in
        (buffer_bytes, fst best, base /. snd best))
      sizes
  in
  (* Merge adjacent grid points with the same winner. *)
  let entries =
    List.fold_left
      (fun acc (size, name, speedup) ->
        match acc with
        | { lo; choice; speedup = s0; _ } :: rest when choice = name ->
            { lo; hi = size; choice; speedup = Float.max s0 speedup } :: rest
        | _ -> { lo = size; hi = size; choice = name; speedup } :: acc)
      [] points
  in
  { t_topology = T.Topology.name topo; t_entries = List.rev entries }

let select table ~buffer_bytes =
  let rec go = function
    | [] -> nccl_name
    | [ last ] -> last.choice
    | e :: rest -> if buffer_bytes <= e.hi then e.choice else go rest
  in
  go table.t_entries

let allreduce_candidates topo =
  let nodes = T.Topology.num_nodes topo in
  let g = T.Topology.gpus_per_node topo in
  if nodes = 1 then
    let num_ranks = g in
    [
      candidate ~name:"allpairs LL r=2"
        (A.Allpairs_allreduce.ir ~proto:T.Protocol.LL ~instances:2
           ~verify:false ~num_ranks ());
      candidate ~name:"allpairs LL r=4"
        (A.Allpairs_allreduce.ir ~proto:T.Protocol.LL ~instances:4
           ~verify:false ~num_ranks ());
      candidate ~name:"ring LL r=8"
        (A.Ring_allreduce.ir ~proto:T.Protocol.LL ~instances:8 ~verify:false
           ~num_ranks ());
      candidate ~name:"ring LL128 r=8"
        (A.Ring_allreduce.ir ~proto:T.Protocol.LL128 ~instances:8
           ~verify:false ~num_ranks ());
      candidate ~name:"ring Simple r=24"
        (A.Ring_allreduce.ir ~proto:T.Protocol.Simple ~instances:24
           ~verify:false ~num_ranks ());
    ]
  else
    let hier proto r name =
      candidate ~max_tiles:16 ~name
        (A.Hierarchical_allreduce.ir ~proto ~instances:r ~verify:false ~nodes
           ~gpus_per_node:g ())
    in
    [
      hier T.Protocol.LL 1 "hierarchical LL r=1";
      hier T.Protocol.LL128 2 "hierarchical LL128 r=2";
      hier T.Protocol.Simple 8 "hierarchical Simple r=8";
    ]

let alltoall_candidates topo =
  let nodes = T.Topology.num_nodes topo in
  let g = T.Topology.gpus_per_node topo in
  if nodes = 1 then []
  else
    let ts proto name =
      candidate ~name
        (A.Two_step_alltoall.ir ~proto ~verify:false ~nodes ~gpus_per_node:g
           ())
    in
    [
      ts T.Protocol.LL128 "two-step LL128"; ts T.Protocol.Simple "two-step Simple";
    ]

let pp_table fmt t =
  Format.fprintf fmt "selection table for %s:@." t.t_topology;
  List.iter
    (fun e ->
      Format.fprintf fmt "  %10s .. %-10s -> %-24s (%.2fx vs NCCL)@."
        (Sweep.pretty e.lo) (Sweep.pretty e.hi) e.choice e.speedup)
    t.t_entries
