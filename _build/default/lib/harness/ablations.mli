(** Ablation studies for the design choices the paper motivates but does
    not plot separately. Each figure reports the {e slowdown factor} from
    disabling one optimization (value > 1 means the optimization helps at
    that size).

    - {!pipelining}: Fig. 6's point — executing the hierarchical AllReduce's
      tiles sequentially instead of streaming them through the four phases.
    - {!aggregation}: §5.1 — shipping the Two-Step AllToAll's staged chunks
      as per-chunk InfiniBand sends instead of one coalesced transfer.
    - {!fusion}: §4.3 — running the Ring AllReduce with fusion disabled
      (separate recv/reduce/send instructions instead of rrs/rcs).
    - {!channel_distribution}: §7.1.1's ch=4 logical-ring distribution vs
      ch=1; in this simulator's cost model the distribution does not pay
      (values < 1), which EXPERIMENTS.md discusses — kept as an honest
      record of where the model and the paper's hardware differ. *)

val pipelining : unit -> Report.figure

val aggregation : unit -> Report.figure

val fusion : unit -> Report.figure

val channel_distribution : unit -> Report.figure

val all : (string * (unit -> Report.figure)) list
