let sizes ~from ~upto =
  let rec go acc s = if s > upto *. 1.001 then List.rev acc else go (s :: acc) (s *. 2.) in
  go [] from

let sizes_coarse ~from ~upto =
  let rec go acc s = if s > upto *. 1.001 then List.rev acc else go (s :: acc) (s *. 4.) in
  go [] from

let kib x = x *. 1024.

let mib x = x *. 1024. *. 1024.

let gib x = x *. 1024. *. 1024. *. 1024.

let pretty bytes =
  let b = bytes in
  let whole u scale =
    let v = b /. scale in
    if v >= 1. && Float.abs (v -. Float.round v) < 0.01 then
      Some (Printf.sprintf "%.0f%s" (Float.round v) u)
    else None
  in
  let candidates =
    [ whole "GB" (1024. *. 1024. *. 1024.); whole "MB" (1024. *. 1024.);
      whole "KB" 1024.; whole "B" 1. ]
  in
  match List.find_opt Option.is_some candidates with
  | Some (Some s) -> s
  | Some None | None -> Printf.sprintf "%.0fB" b
