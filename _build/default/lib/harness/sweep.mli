(** Buffer-size sweeps matching the paper's figure axes. *)

val sizes : from:float -> upto:float -> float list
(** Powers of two between [from] and [upto] inclusive (bytes). *)

val sizes_coarse : from:float -> upto:float -> float list
(** Powers of four — half the points, for expensive simulations. *)

val kib : float -> float
(** [kib x] is [x] KiB in bytes. *)

val mib : float -> float

val gib : float -> float

val pretty : float -> string
(** ["1KB"], ["512KB"], ["4MB"], ["2GB"], ... as in the paper's axes. *)
