(** The hierarchical AllReduce composed from four NCCL collective calls
    (the red line of Fig. 8c/8d).

    Works like DeepSpeed-style hierarchical compositions: an intra-node
    ReduceScatter kernel, an inter-node ReduceScatter kernel, an inter-node
    AllGather kernel and an intra-node AllGather kernel, launched back to
    back. Each launch pays the kernel overhead and — crucially — tiles
    cannot pipeline across kernel boundaries, which is exactly the deficit
    §7.2 attributes to this implementation versus the single-kernel
    MSCCLang version. *)

val time : Msccl_topology.Topology.t -> Nccl_model.sized_time
(** Sum of the four phases' simulated times at NCCL's static protocol for
    the buffer size. *)
