open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms

(* Each phase is traced as its own program over the full rank set (one
   NCCL group launch per phase). Timing-only: the phase pre/postconditions
   are intermediate states of the composed algorithm, so the collective is
   a shape-only Custom and verification is skipped — correctness of the
   algorithm itself is covered by Hierarchical_allreduce. *)
let phase_coll ~num_ranks ~chunks name =
  Collective.make
    (Collective.Custom
       {
         Collective.custom_name = name;
         input_chunks = chunks;
         output_chunks = 1;
         expected = (fun ~rank:_ ~index:_ -> None);
         initial = None;
       })
    ~num_ranks ()

let instances_for = function
  | T.Protocol.LL -> 4
  | T.Protocol.LL128 -> 8
  | T.Protocol.Simple | T.Protocol.Sccl -> Nccl_model.nccl_channels

let time topo =
  let n = T.Topology.num_nodes topo and g = T.Topology.gpus_per_node topo in
  let num_ranks = n * g in
  let chunks = num_ranks in
  let local_ranks node = List.init g (fun i -> (node * g) + i) in
  let cross_ranks gpu = List.init n (fun i -> (i * g) + gpu) in
  let phase name f =
    Nccl_model.per_proto (fun proto ->
        Compile.ir ~name ~proto
          ~instances:(instances_for proto)
          ~verify:false
          (phase_coll ~num_ranks ~chunks name)
          f)
  in
  let intra_rs =
    phase "composed-intra-rs" (fun prog ->
        for node = 0 to n - 1 do
          A.Patterns.ring_reduce_scatter prog ~ranks:(local_ranks node)
            ~offset:0 ~count:n ()
        done)
  in
  let inter_rs =
    phase "composed-inter-rs" (fun prog ->
        for gpu = 0 to g - 1 do
          A.Patterns.ring_reduce_scatter prog ~ranks:(cross_ranks gpu)
            ~offset:(gpu * n) ~count:1 ()
        done)
  in
  let inter_ag =
    phase "composed-inter-ag" (fun prog ->
        for gpu = 0 to g - 1 do
          A.Patterns.ring_all_gather prog ~ranks:(cross_ranks gpu)
            ~offset:(gpu * n) ~count:1 ()
        done)
  in
  let intra_ag =
    phase "composed-intra-ag" (fun prog ->
        for node = 0 to n - 1 do
          A.Patterns.ring_all_gather prog ~ranks:(local_ranks node) ~offset:0
            ~count:n ()
        done)
  in
  fun ~buffer_bytes ->
    let proto = Nccl_model.protocol_for_size ~bytes:buffer_bytes in
    List.fold_left
      (fun acc phase ->
        acc
        +. (Simulator.run_buffer ~topo ~buffer_bytes (phase proto))
             .Simulator.time)
      0.
      [ intra_rs; inter_rs; inter_ag; intra_ag ]
