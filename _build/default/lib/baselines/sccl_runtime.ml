module T = Msccl_topology
module A = Msccl_algorithms

let allgather_122 topo =
  let ir = A.Allgather_sccl.ir ~proto:T.Protocol.Sccl () in
  fun ~buffer_bytes ->
    (Msccl_core.Simulator.run_buffer ~topo ~buffer_bytes ir)
      .Msccl_core.Simulator.time
