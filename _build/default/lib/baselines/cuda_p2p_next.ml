let time = Nccl_model.send_next
