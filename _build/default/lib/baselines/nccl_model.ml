open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms

type sized_time = buffer_bytes:float -> float

let nccl_channels = 24

let protocol_for_size ~bytes =
  if bytes <= 65536. then T.Protocol.LL
  else if bytes <= 2_097_152. then T.Protocol.LL128
  else T.Protocol.Simple

(* Compile each protocol variant once, on first use. *)
let per_proto make =
  let cache = Hashtbl.create 4 in
  fun proto ->
    match Hashtbl.find_opt cache proto with
    | Some ir -> ir
    | None ->
        let ir = make proto in
        Hashtbl.add cache proto ir;
        ir

(* NCCL's rings: node-major rank order, with the intra-node order rotated
   per ring so consecutive rings leave each node through a different GPU
   (and hence a different NIC). *)
let nccl_rings topo =
  let n = T.Topology.num_nodes topo and g = T.Topology.gpus_per_node topo in
  Array.init nccl_channels (fun k ->
      List.concat_map
        (fun node -> List.init g (fun i -> (node * g) + ((i + k) mod g)))
        (List.init n Fun.id))

let allreduce topo =
  let num_ranks = T.Topology.num_ranks topo in
  let rings = nccl_rings topo in
  let ring =
    per_proto (fun proto ->
        A.Ring_allreduce.ir_multi ~proto ~verify:false ~rings ())
  in
  let tree =
    per_proto (fun proto ->
        A.Tree_allreduce.ir ~proto ~channels:2 ~chunk_factor:4 ~instances:2
          ~verify:false ~num_ranks ())
  in
  let multi_node = T.Topology.num_nodes topo > 1 in
  fun ~buffer_bytes ->
    let proto = protocol_for_size ~bytes:buffer_bytes in
    let time ir = (Simulator.run_buffer ~topo ~buffer_bytes ir).Simulator.time in
    let ring_time = time (ring proto) in
    if multi_node then Float.min ring_time (time (tree proto)) else ring_time

let alltoall topo =
  let num_ranks = T.Topology.num_ranks topo in
  let naive =
    per_proto (fun proto ->
        A.Alltoall_naive.ir ~proto ~verify:false ~num_ranks ())
  in
  fun ~buffer_bytes ->
    let proto = protocol_for_size ~bytes:(buffer_bytes /. float_of_int num_ranks) in
    (* A naive p2p transfer is a single hop: tiling would only split
       messages without enabling any pipelining, so one tile suffices. *)
    (Simulator.run_buffer ~topo ~buffer_bytes ~max_tiles:1
       ~check_occupancy:false (naive proto))
      .Simulator.time

let send_next topo =
  let num_ranks = T.Topology.num_ranks topo in
  let g = T.Topology.gpus_per_node topo in
  let coll =
    Collective.make Collective.Alltonext ~num_ranks ~chunk_factor:g ()
  in
  let make proto =
    Compile.ir ~name:"p2p-next" ~proto ~verify:false coll (fun prog ->
        for r = 0 to num_ranks - 2 do
          let c =
            Program.chunk prog ~rank:r Buffer_id.Input ~index:0 ~count:g ()
          in
          ignore (Program.copy c ~rank:(r + 1) Buffer_id.Output ~index:0 ())
        done)
  in
  let cached = per_proto make in
  fun ~buffer_bytes ->
    let proto = protocol_for_size ~bytes:buffer_bytes in
    (Simulator.run_buffer ~topo ~buffer_bytes ~max_tiles:1 (cached proto))
      .Simulator.time
