(** The SCCL runtime (paper §7.5).

    SCCL implements its synthesized algorithms with its own point-to-point
    protocol: a direct copy from source to destination buffer over NVLink,
    with no intermediate FIFO slots — a smaller memory footprint than
    MSCCLang's Simple protocol (the reason SCCL wins the middle sizes of
    Fig. 11) but without LL's low-latency flags (the reason MSCCLang LL
    wins the small sizes). Modelled as the {!Msccl_topology.Protocol.Sccl}
    protocol applied to the same (1,2,2) AllGather IR. *)

val allgather_122 : Msccl_topology.Topology.t -> Nccl_model.sized_time
(** Latency of the (1,2,2) AllGather on the given (DGX-1) topology under
    the SCCL runtime; [buffer_bytes] is the per-GPU contribution size. *)
