(** The hand-optimized CUDA Two-Step AllToAll baseline (paper §7.3).

    The expert implementation uses NCCL point-to-point primitives, but
    needs {e a separate kernel that copies and contiguously arranges chunks
    in a scratch buffer for the aggregated IB send, resulting in extra
    synchronization overhead} (§7.3). The model therefore launches two
    kernels:

    - a {b pack} kernel performing every intra-node movement: direct
      same-node deliveries plus staging chunks on the gateway GPUs;
    - a {b ship} kernel performing the aggregated InfiniBand transfers.

    Nothing pipelines across the kernel boundary, and each launch pays the
    kernel overhead; this reproduces the deficit of the hand-written code
    versus the single-kernel MSCCLang version. *)

val time : Msccl_topology.Topology.t -> Nccl_model.sized_time
(** [buffer_bytes] is the total AllToAll buffer per GPU (ranks chunks). *)
