open Msccl_core
module T = Msccl_topology

let shape_only ~num_ranks ~chunks name =
  Collective.make
    (Collective.Custom
       {
         Collective.custom_name = name;
         input_chunks = chunks;
         output_chunks = chunks;
         expected = (fun ~rank:_ ~index:_ -> None);
         initial = None;
       })
    ~num_ranks ()

let time topo =
  let n = T.Topology.num_nodes topo and g = T.Topology.gpus_per_node topo in
  let num_ranks = n * g in
  let rank m i = (m * g) + i in
  (* Kernel 1: same-node deliveries and gateway staging (Fig. 9's first
     loop), all over NVLink. *)
  let pack =
    Nccl_model.per_proto (fun proto ->
        Compile.ir ~name:"cuda-two-step-pack" ~proto ~verify:false
          (shape_only ~num_ranks ~chunks:num_ranks "two-step-pack")
          (fun prog ->
            for nn = 0 to n - 1 do
              for gg = 0 to g - 1 do
                for m = 0 to n - 1 do
                  for i = 0 to g - 1 do
                    let c =
                      Program.chunk prog ~rank:(rank m i) Buffer_id.Input
                        ~index:(rank nn gg) ()
                    in
                    if nn = m then
                      ignore
                        (Program.copy c ~rank:(rank nn gg) Buffer_id.Output
                           ~index:(rank m i) ())
                    else
                      ignore
                        (Program.copy c ~rank:(rank m gg) Buffer_id.Scratch
                           ~index:((nn * g) + i) ())
                  done
                done
              done
            done))
  in
  (* Kernel 2: the aggregated IB transfers; the staged data is this
     kernel's input (scratch image of kernel 1). *)
  let ship =
    Nccl_model.per_proto (fun proto ->
        Compile.ir ~name:"cuda-two-step-ship" ~proto ~verify:false
          (shape_only ~num_ranks ~chunks:num_ranks "two-step-ship")
          (fun prog ->
            for nn = 0 to n - 1 do
              for gg = 0 to g - 1 do
                for m = 0 to n - 1 do
                  if nn <> m then begin
                    let c =
                      Program.chunk prog ~rank:(rank m gg) Buffer_id.Input
                        ~index:(nn * g) ~count:g ()
                    in
                    ignore
                      (Program.copy c ~rank:(rank nn gg) Buffer_id.Output
                         ~index:(m * g) ())
                  end
                done
              done
            done))
  in
  fun ~buffer_bytes ->
    let proto =
      Nccl_model.protocol_for_size
        ~bytes:(buffer_bytes /. float_of_int num_ranks *. float_of_int g)
    in
    let t ir = (Simulator.run_buffer ~topo ~buffer_bytes ir).Simulator.time in
    t (pack proto) +. t (ship proto)
