lib/baselines/nccl_composed.ml: Collective Compile List Msccl_algorithms Msccl_core Msccl_topology Nccl_model Simulator
