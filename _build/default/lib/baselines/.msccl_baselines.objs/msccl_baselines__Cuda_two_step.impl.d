lib/baselines/cuda_two_step.ml: Buffer_id Collective Compile Msccl_core Msccl_topology Nccl_model Program Simulator
