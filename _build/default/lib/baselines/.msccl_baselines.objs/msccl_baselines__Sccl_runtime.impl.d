lib/baselines/sccl_runtime.ml: Msccl_algorithms Msccl_core Msccl_topology
