lib/baselines/nccl_composed.mli: Msccl_topology Nccl_model
