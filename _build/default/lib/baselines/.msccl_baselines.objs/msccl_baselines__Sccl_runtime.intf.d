lib/baselines/sccl_runtime.mli: Msccl_topology Nccl_model
