lib/baselines/nccl_model.mli: Msccl_topology
