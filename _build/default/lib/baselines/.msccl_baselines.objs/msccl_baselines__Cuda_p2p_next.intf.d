lib/baselines/cuda_p2p_next.mli: Msccl_topology Nccl_model
