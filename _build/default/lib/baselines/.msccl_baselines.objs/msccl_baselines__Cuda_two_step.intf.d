lib/baselines/cuda_two_step.mli: Msccl_topology Nccl_model
