lib/baselines/cuda_p2p_next.ml: Nccl_model
