lib/baselines/nccl_model.ml: Array Buffer_id Collective Compile Float Fun Hashtbl List Msccl_algorithms Msccl_core Msccl_topology Program Simulator
