(** The hand-written AllToNext baseline (paper §7.4): every GPU sends its
    whole buffer to the next GPU with NCCL's send and receive primitives —
    one connection, one thread block, and a single InfiniBand NIC at node
    boundaries. *)

val time : Msccl_topology.Topology.t -> Nccl_model.sized_time
