(** A model of NCCL 2.8's collectives, used as the paper's baseline.

    §7.1.1: "NCCL's Ring schedule is roughly equivalent to scheduling a
    logical ring onto one channel, parallelizing the entire program 24
    times, and varying the protocol based on the buffer size." The model
    reproduces exactly that — a 1-channel ring replicated [nccl_channels]
    times, with NCCL's static protocol thresholds — and runs it through
    the same simulator as MSCCLang programs so speedups are ratios of
    comparable quantities. On multiple nodes NCCL also considers its Tree
    algorithm (better latency for small buffers); the model simulates both
    and takes the better one, mirroring NCCL's tuner.

    AllToAll in NCCL is grouped point-to-point: every pair exchanges its
    chunk directly in one kernel. Send/Recv is a single direct transfer.

    All model IRs are compiled once per topology and reused across buffer
    sizes. *)

type sized_time = buffer_bytes:float -> float
(** Completion time in seconds for a given total buffer size. *)

val nccl_channels : int
(** The parallelization NCCL applies to its ring (24). *)

val protocol_for_size : bytes:float -> Msccl_topology.Protocol.t
(** NCCL's static protocol selection rule: LL for small buffers, LL128 in
    the middle, Simple for large. *)

val per_proto :
  (Msccl_topology.Protocol.t -> 'a) -> Msccl_topology.Protocol.t -> 'a
(** Memoizes a per-protocol construction (used to compile baseline IRs once
    per protocol per topology). *)

val allreduce : Msccl_topology.Topology.t -> sized_time
(** Best of ring (node-major order, minimizing InfiniBand crossings) and —
    on multi-node topologies — a double-phase tree, at NCCL's static
    configuration for each size. *)

val alltoall : Msccl_topology.Topology.t -> sized_time
(** Grouped point-to-point AllToAll. Occupancy checking is disabled: NCCL
    time-shares thread blocks when peers outnumber SMs, which the
    simulator's resident-thread-block model would otherwise reject (this
    under-counts NCCL's cost, i.e. it is conservative for our speedups). *)

val send_next : Msccl_topology.Topology.t -> sized_time
(** Every rank sends its whole buffer to rank+1 with one NCCL send/recv
    pair — the naive AllToNext of §7.4. *)
