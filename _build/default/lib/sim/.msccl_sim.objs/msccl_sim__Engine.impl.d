lib/sim/engine.ml: Array Float Hashtbl List Pqueue
