lib/sim/engine.mli:
