lib/sim/pqueue.mli:
