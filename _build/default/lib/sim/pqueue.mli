(** A mutable binary min-heap priority queue.

    Used by the discrete-event engine (keyed by event time) and by the
    compiler's scheduler (keyed by instruction priority). Ties are broken by
    insertion order, which makes every client deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> unit
(** O(log n). Elements with equal [priority] pop in insertion order. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element. O(log n). *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
