type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let entry_lt a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let get t i =
  match t.heap.(i) with
  | Some e -> e
  | None -> assert false

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt (get t l) (get t !smallest) then smallest := l;
  if r < t.size && entry_lt (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let heap = Array.make (2 * Array.length t.heap) None in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let add t ~priority value =
  if t.size = Array.length t.heap then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.heap.(t.size) <- Some { priority; seq; value };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some (top.priority, top.value)
  end

let peek t = if t.size = 0 then None else
    let top = get t 0 in
    Some (top.priority, top.value)

let clear t =
  Array.fill t.heap 0 t.size None;
  t.size <- 0
