(** Discrete-event engine with fluid-flow bandwidth sharing.

    Time is in seconds. Two primitives drive a simulation:

    - timed callbacks ({!at} / {!after}), and
    - {e flows}: data transfers of a given byte count across a list of
      shared resources. While a flow is active its rate is
      [min(cap, min over its resources r of capacity(r) / nflows(r))] —
      i.e. every resource is shared equally among the flows crossing it,
      and each flow is additionally capped (modelling the maximum bandwidth
      a single thread block can drive, paper §5.1). Rates are recomputed
      whenever the set of flows on a resource changes, so contention between
      overlapping transfers is captured without fixed time-stepping.

    The engine is deterministic: simultaneous events fire in creation
    order. *)

type t

val create : capacities:float array -> t
(** [capacities.(r)] is the bandwidth of resource [r] in bytes/second. *)

val now : t -> float

val at : t -> float -> (unit -> unit) -> unit
(** Schedule a callback at an absolute time (>= [now t]). *)

val after : t -> float -> (unit -> unit) -> unit
(** Schedule a callback [delay] seconds from now. *)

val start_flow :
  t -> bytes:float -> hops:int list -> cap:float -> (unit -> unit) -> unit
(** Begin a transfer; the callback fires when the last byte arrives.
    [hops] is the list of resource ids the flow occupies; [cap] is the
    per-flow rate cap in bytes/second. A flow with [bytes <= 0.] completes
    at the current time (still asynchronously, in event order). *)

val run : t -> unit
(** Process events until none remain. Callbacks may schedule further events
    and flows. *)

val events_processed : t -> int
(** Number of events processed so far (a determinism/effort metric). *)

val active_flows : t -> int
(** Number of flows currently in the air. *)
