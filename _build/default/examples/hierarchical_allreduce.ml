(* The paper's running example (§2, Fig. 1/3): hierarchical AllReduce on
   2 nodes x 3 GPUs, compiled and inspected end to end, plus the §7.2
   comparison against composing NCCL collectives (kernel-launch overhead
   and lost cross-phase pipelining).

     dune exec examples/hierarchical_allreduce.exe *)

open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms
module B = Msccl_baselines

let () =
  (* Fig. 1's shape: N = 2 nodes, G = 3 GPUs per node, N*G = 6 chunks. *)
  let nodes = 2 and gpus_per_node = 3 in
  let coll =
    Collective.make Collective.Allreduce ~num_ranks:(nodes * gpus_per_node)
      ~chunk_factor:(nodes * gpus_per_node) ~inplace:true ()
  in
  let report =
    Compile.compile ~name:"hierarchical-allreduce" coll
      (A.Hierarchical_allreduce.program ~nodes ~gpus_per_node
         ~intra_parallel:nodes)
  in
  Format.printf "%a@.@." Compile.pp_report report;
  Format.printf "MSCCL-IR for GPU 0:@.";
  let ir = report.Compile.ir in
  let gpu0 = { ir with Ir.gpus = [| ir.Ir.gpus.(0) |] } in
  (* print just one GPU's program, Fig. 4 style *)
  Array.iter
    (fun (tb : Ir.tb) ->
      Format.printf "  tb %d send=%d recv=%d ch=%d: %d step(s)@." tb.Ir.tb_id
        tb.Ir.send tb.Ir.recv tb.Ir.chan (Array.length tb.Ir.steps))
    gpu0.Ir.gpus.(0).Ir.tbs;
  Format.printf "@.";

  (* The single-kernel pipelined execution vs. the same algorithm composed
     from four NCCL collective launches (Fig. 6 / Fig. 8c's red line).
     Both sides get the same whole-program parallelization. *)
  let topo = T.Presets.hierarchical ~nodes ~gpus_per_node () in
  let ir_r8 = Instances.blocked ir ~instances:8 in
  let composed = B.Nccl_composed.time topo in
  Format.printf "single kernel vs composed NCCL kernels (%d x %d GPUs):@."
    nodes gpus_per_node;
  List.iter
    (fun mb ->
      let buffer_bytes = mb *. 1024. *. 1024. in
      let single =
        (Simulator.run_buffer ~topo ~buffer_bytes ~max_tiles:16 ir_r8)
          .Simulator.time
      in
      let multi = composed ~buffer_bytes in
      Format.printf
        "  %6.0f MB: MSCCLang %9.1f us | composed %9.1f us | %.2fx@." mb
        (single *. 1e6) (multi *. 1e6) (multi /. single))
    [ 1.; 16.; 256. ]
