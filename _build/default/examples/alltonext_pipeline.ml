(* AllToNext (§7.4): a custom collective for pipeline-parallel workloads
   where GPU i streams activations to GPU i+1. The naive implementation
   bottlenecks on a single InfiniBand NIC at each node boundary; AllToNext
   scatters across the node so every NIC carries 1/G of the buffer.

   This example also validates the algorithm numerically: after execution,
   each rank's output must equal its predecessor's input.

     dune exec examples/alltonext_pipeline.exe *)

open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms
module B = Msccl_baselines
module H = Msccl_harness

let () =
  let nodes = 3 and gpus_per_node = 8 in
  let topo = T.Presets.ndv4 ~nodes in

  (* Correctness on real data first. *)
  let small = A.Alltonext.ir ~nodes:2 ~gpus_per_node:4 () in
  let st = Executor.Data.run_random ~elems_per_chunk:2 ~seed:9 small in
  let ok = ref true in
  for rank = 0 to Ir.num_ranks small - 1 do
    Array.iteri
      (fun index v ->
        match
          (v, Executor.Data.reference ~elems_per_chunk:2 ~seed:9 small ~rank ~index)
        with
        | Some got, Some want -> if got <> want then ok := false
        | None, Some _ -> ok := false
        | (Some _ | None), None -> ())
      (Executor.Data.output st ~rank)
  done;
  Printf.printf "numeric check (2x4 GPUs): %s\n\n" (if !ok then "OK" else "WRONG");

  (* Performance vs the naive point-to-point baseline. *)
  let cuda = B.Cuda_p2p_next.time topo in
  let variants =
    List.map
      (fun r ->
        ( r,
          A.Alltonext.ir ~proto:T.Protocol.Simple ~instances:r ~verify:false
            ~nodes ~gpus_per_node () ))
      [ 1; 4; 16 ]
  in
  Printf.printf "AllToNext on %s (speedup over naive P2P):\n\n"
    (T.Topology.name topo);
  Printf.printf "%10s | %10s" "size" "naive us";
  List.iter (fun (r, _) -> Printf.printf " | %8s" (Printf.sprintf "r=%d" r)) variants;
  print_newline ();
  List.iter
    (fun buffer_bytes ->
      let base = cuda ~buffer_bytes in
      Printf.printf "%10s | %10.1f" (H.Sweep.pretty buffer_bytes) (base *. 1e6);
      List.iter
        (fun (_, ir) ->
          let t =
            (Simulator.run_buffer ~topo ~buffer_bytes ~max_tiles:8
               ~check_occupancy:false ir)
              .Simulator.time
          in
          Printf.printf " | %7.2fx" (base /. t))
        variants;
      print_newline ())
    (H.Sweep.sizes_coarse ~from:(H.Sweep.kib 16.) ~upto:(H.Sweep.mib 256.));
  print_newline ();
  print_endline
    "Small buffers: the extra scatter/gather hops cost more than they save.\n\
     Large buffers: all 8 NICs per node carry traffic, up to ~14x faster."
