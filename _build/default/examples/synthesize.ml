(* Synthesizing a collective from the wiring (the SCCL direction, §7.5):
   give the synthesizer only the DGX-1's NVLink graph and let it derive an
   AllGather schedule, then compare it against the hand-written (1,2,2)
   algorithm — both compiled, verified and timed by the same pipeline.

     dune exec examples/synthesize.exe *)

open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms
module H = Msccl_harness

let () =
  (* 1. Plan from connectivity alone. *)
  let sched =
    A.Synthesis.plan ~num_ranks:8 ~connected:T.Presets.dgx1_connected
      ~link_count:T.Presets.dgx1_nvlink_count ()
  in
  Printf.printf "synthesized AllGather for the DGX-1 NVLink graph: %d rounds\n"
    (List.length sched.A.Synthesis.rounds);
  List.iteri
    (fun i transfers ->
      Printf.printf "  round %d: %d transfers\n" i (List.length transfers))
    sched.A.Synthesis.rounds;

  (* 2. Lower + compile + verify like any hand-written program. *)
  let synth =
    A.Synthesis.allgather ~proto:T.Protocol.Simple ~num_ranks:8
      ~connected:T.Presets.dgx1_connected
      ~link_count:T.Presets.dgx1_nvlink_count ()
  in
  Printf.printf "\ncompiled + verified: %s\n\n" (Ir.summary synth);

  (* 3. Race it against the hand-written (1,2,2) schedule. *)
  let hand = A.Allgather_sccl.ir ~proto:T.Protocol.Simple () in
  let topo = T.Presets.dgx1 () in
  Printf.printf "%10s | %12s | %12s | %s\n" "size" "(1,2,2) us" "synth us"
    "synth speedup";
  List.iter
    (fun buffer_bytes ->
      let t ir =
        (Simulator.run_buffer ~topo ~buffer_bytes ~max_tiles:16 ir)
          .Simulator.time
      in
      let th = t hand and ts = t synth in
      Printf.printf "%10s | %12.1f | %12.1f | %8.2fx\n"
        (H.Sweep.pretty buffer_bytes) (th *. 1e6) (ts *. 1e6) (th /. ts))
    (H.Sweep.sizes_coarse ~from:(H.Sweep.kib 64.) ~upto:(H.Sweep.mib 64.));
  print_newline ();
  print_endline
    "The synthesized schedule finds the same 2-round structure as SCCL's\n\
     (1,2,2) but spreads traffic across all six NVLink bricks per GPU,\n\
     where the hand-written schedule only uses the quad + cross links."
