(* Exploring the optimization space the way §7 describes: take the
   Two-Step AllToAll on 4 NDv4 nodes and sweep protocol x parallelization,
   watching where each configuration wins — "a developer can explore
   different implementations and optimizations without fearing data races
   or deadlocks" (§1).

     dune exec examples/alltoall_tuning.exe *)

open Msccl_core
module T = Msccl_topology
module A = Msccl_algorithms
module B = Msccl_baselines
module H = Msccl_harness

let () =
  let nodes = 4 and gpus_per_node = 8 in
  let topo = T.Presets.ndv4 ~nodes in
  let configs =
    [
      (T.Protocol.LL, 1); (T.Protocol.LL128, 1); (T.Protocol.Simple, 1);
      (T.Protocol.Simple, 2);
    ]
  in
  let irs =
    List.map
      (fun (proto, r) ->
        ( Printf.sprintf "%s r=%d" (T.Protocol.name proto) r,
          A.Two_step_alltoall.ir ~proto ~instances:r ~verify:false ~nodes
            ~gpus_per_node () ))
      configs
  in
  let nccl = B.Nccl_model.alltoall topo in
  Printf.printf "Two-Step AllToAll tuning on %s (times in us; * = winner)\n\n"
    (T.Topology.name topo);
  Printf.printf "%10s | %12s" "size" "NCCL";
  List.iter (fun (name, _) -> Printf.printf " | %12s" name) irs;
  print_newline ();
  List.iter
    (fun buffer_bytes ->
      let nccl_t = nccl ~buffer_bytes in
      let times =
        List.map
          (fun (_, ir) ->
            (Simulator.run_buffer ~topo ~buffer_bytes ~check_occupancy:false ir)
              .Simulator.time)
          irs
      in
      let best = List.fold_left Float.min nccl_t times in
      let cell t =
        Printf.printf " | %10.1f%s" (t *. 1e6) (if t = best then "*" else " ")
      in
      Printf.printf "%10s" (H.Sweep.pretty buffer_bytes);
      cell nccl_t;
      List.iter cell times;
      print_newline ())
    (H.Sweep.sizes_coarse ~from:(H.Sweep.mib 1.) ~upto:(H.Sweep.gib 1.));
  print_newline ();
  print_endline
    "Reading: NCCL wins tiny buffers (one-step, low latency); the Two-Step\n\
     aggregation wins once per-message InfiniBand overhead dominates; the\n\
     Simple protocol takes over from LL128 as buffers grow."
