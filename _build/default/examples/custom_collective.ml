(* Defining a brand-new collective (the paper's §7.4 story, beyond the
   built-ins): "HalvedBroadcast" — rank 0 holds 2 chunks; the first chunk
   must reach every even rank, the second every odd rank.

   The collective is just a postcondition over the chunk algebra; the
   verifier then checks any routing we write against it, so we can iterate
   on the algorithm without fearing correctness bugs.

     dune exec examples/custom_collective.exe *)

open Msccl_core
module T = Msccl_topology

let num_ranks = 8

let collective =
  Collective.make
    (Collective.Custom
       {
         Collective.custom_name = "halved-broadcast";
         input_chunks = 2;
         output_chunks = 1;
         expected =
           (fun ~rank ~index ->
             match index with
             | 0 -> Some (Chunk.input ~rank:0 ~index:(rank mod 2))
             | _ -> None);
         initial = None;
       })
    ~num_ranks ()

(* First attempt: rank 0 sends the right chunk to everyone directly. *)
let direct prog =
  for r = 0 to num_ranks - 1 do
    let c = Program.chunk prog ~rank:0 Buffer_id.Input ~index:(r mod 2) () in
    if r = 0 then ignore (Program.copy c ~rank:0 Buffer_id.Output ~index:0 ())
    else ignore (Program.copy c ~rank:r Buffer_id.Output ~index:0 ())
  done

(* Second attempt: two pipelined chains, one over the even ranks and one
   over the odd ranks — fewer connections per GPU, forwarding hops fuse
   into receive-copy-sends. *)
let chains prog =
  List.iter
    (fun parity ->
      let members =
        List.filter (fun r -> r mod 2 = parity) (List.init num_ranks Fun.id)
      in
      match members with
      | [] -> ()
      | first :: rest ->
          let c = Program.chunk prog ~rank:0 Buffer_id.Input ~index:parity () in
          let cur =
            ref (Program.copy c ~rank:first Buffer_id.Output ~index:0 ())
          in
          List.iter
            (fun r -> cur := Program.copy !cur ~rank:r Buffer_id.Output ~index:0 ())
            rest)
    [ 0; 1 ]

(* A deliberately WRONG attempt, to show the verifier catching it: every
   rank gets chunk 0. *)
let wrong prog =
  for r = 0 to num_ranks - 1 do
    let c = Program.chunk prog ~rank:0 Buffer_id.Input ~index:0 () in
    if r = 0 then ignore (Program.copy c ~rank:0 Buffer_id.Output ~index:0 ())
    else ignore (Program.copy c ~rank:r Buffer_id.Output ~index:0 ())
  done

let () =
  let topo = T.Presets.ndv4 ~nodes:1 in
  let show name algorithm =
    let report = Compile.compile ~name ~verify:false collective algorithm in
    let verdict =
      match Verify.check report.Compile.ir with
      | Ok () ->
          let r =
            Simulator.run_buffer ~topo ~buffer_bytes:(2. *. 1024. *. 1024.)
              report.Compile.ir
          in
          Printf.sprintf "verified OK; 2MB in %.1f us" (r.Simulator.time *. 1e6)
      | Error msg -> "REJECTED: " ^ String.sub msg 0 (min 80 (String.length msg))
    in
    Format.printf "%-12s %-55s %s@." name (Ir.summary report.Compile.ir)
      verdict
  in
  show "direct" direct;
  show "chains" chains;
  show "wrong" wrong
