(* Quickstart: write a collective in the MSCCLang DSL, compile it, verify
   it, run it on real data, and simulate it on a cluster.

   The algorithm: a Ring AllGather over 4 GPUs — each GPU contributes one
   chunk and ends up with everyone's chunks.

     dune exec examples/quickstart.exe *)

open Msccl_core
module T = Msccl_topology

let num_ranks = 4

(* 1. The collective we claim to implement: its pre/postcondition lets the
   compiler check our routing automatically (paper §3.2). *)
let collective = Collective.make Collective.Allgather ~num_ranks ()

(* 2. The algorithm, as chunk routing (paper §3.3, Table 1): every rank
   copies its chunk into place locally, then forwards chunks around the
   ring; the compiler will fuse each forwarding hop into a
   receive-copy-send. *)
let algorithm prog =
  for r = 0 to num_ranks - 1 do
    (* own chunk into its slot of the output buffer *)
    let c = Program.chunk prog ~rank:r Buffer_id.Input ~index:0 () in
    let placed = Program.copy c ~rank:r Buffer_id.Output ~index:r () in
    (* ...then around the ring *)
    let cur = ref placed in
    for hop = 1 to num_ranks - 1 do
      let next = (r + hop) mod num_ranks in
      cur := Program.copy !cur ~rank:next Buffer_id.Output ~index:r ()
    done
  done

let () =
  (* 3. Compile: trace -> Chunk DAG -> Instruction DAG -> fusion ->
     schedule -> MSCCL-IR (+ verification). *)
  let report = Compile.compile ~name:"quickstart-allgather" collective algorithm in
  Format.printf "compiled: %a@.@." Compile.pp_report report;
  let ir = report.Compile.ir in

  (* 4. The verifier already ran inside [compile]; run it again explicitly
     to show what it checks. *)
  (match Verify.check ir with
  | Ok () -> print_endline "verify: postcondition + deadlock-freedom OK"
  | Error msg -> failwith msg);

  (* 5. Execute the compiled program on actual float data and check the
     result numerically. *)
  let st = Executor.Data.run_random ~elems_per_chunk:3 ~seed:1 ir in
  let ok = ref true in
  for rank = 0 to num_ranks - 1 do
    Array.iteri
      (fun index v ->
        match
          (v, Executor.Data.reference ~elems_per_chunk:3 ~seed:1 ir ~rank ~index)
        with
        | Some got, Some want ->
            Array.iteri
              (fun e x -> if abs_float (x -. want.(e)) > 1e-9 then ok := false)
              got
        | None, Some _ -> ok := false
        | (Some _ | None), None -> ())
      (Executor.Data.output st ~rank)
  done;
  Printf.printf "numeric execution: %s\n\n" (if !ok then "OK" else "WRONG");

  (* 6. Predict performance on one NDv4 node for a few buffer sizes. *)
  let topo = T.Presets.ndv4 ~nodes:1 in
  (* our topology has 8 GPUs; rebuild the same algorithm for 8 ranks *)
  let ir8 =
    Compile.ir ~name:"quickstart-allgather"
      (Collective.make Collective.Allgather ~num_ranks:8 ())
      (fun prog ->
        for r = 0 to 7 do
          let c = Program.chunk prog ~rank:r Buffer_id.Input ~index:0 () in
          let placed = Program.copy c ~rank:r Buffer_id.Output ~index:r () in
          let cur = ref placed in
          for hop = 1 to 7 do
            cur := Program.copy !cur ~rank:((r + hop) mod 8) Buffer_id.Output ~index:r ()
          done
        done)
  in
  print_endline "simulated on NDv4 (8xA100):";
  List.iter
    (fun buffer_bytes ->
      let r = Simulator.run_buffer ~topo ~buffer_bytes ir8 in
      Printf.printf "  %8s per GPU: %9.1f us (algbw %6.1f GB/s)\n"
        (Msccl_harness.Sweep.pretty buffer_bytes)
        (r.Simulator.time *. 1e6)
        (Simulator.algbw ~buffer_bytes r /. 1e9))
    [ 65536.; 1048576.; 16777216. ];

  (* 7. Save the executable form. *)
  Xml.save ir "quickstart-allgather.xml";
  print_endline "\nwrote quickstart-allgather.xml (msccl-style MSCCL-IR)"
