examples/quickstart.ml: Array Buffer_id Collective Compile Executor Format List Msccl_core Msccl_harness Msccl_topology Printf Program Simulator Verify Xml
