examples/custom_collective.mli:
