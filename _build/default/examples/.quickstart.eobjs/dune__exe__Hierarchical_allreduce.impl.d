examples/hierarchical_allreduce.ml: Array Collective Compile Format Instances Ir List Msccl_algorithms Msccl_baselines Msccl_core Msccl_topology Simulator
