examples/alltonext_pipeline.ml: Array Executor Ir List Msccl_algorithms Msccl_baselines Msccl_core Msccl_harness Msccl_topology Printf Simulator
