examples/alltonext_pipeline.mli:
