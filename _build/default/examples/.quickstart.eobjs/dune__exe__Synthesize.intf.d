examples/synthesize.mli:
