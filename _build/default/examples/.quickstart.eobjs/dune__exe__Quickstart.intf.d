examples/quickstart.mli:
