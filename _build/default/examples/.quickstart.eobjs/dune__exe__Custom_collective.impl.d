examples/custom_collective.ml: Buffer_id Chunk Collective Compile Format Fun Ir List Msccl_core Msccl_topology Printf Program Simulator String Verify
