examples/synthesize.ml: Ir List Msccl_algorithms Msccl_core Msccl_harness Msccl_topology Printf Simulator
