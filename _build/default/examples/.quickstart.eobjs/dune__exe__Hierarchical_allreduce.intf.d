examples/hierarchical_allreduce.mli:
