examples/alltoall_tuning.mli:
